"""Tests for the Virtual RISC-V parser and symbolic semantics."""

import pytest

from repro.memory import Memory, MemoryObject
from repro.semantics.state import StatusKind
from repro.smt import t
from repro.vriscv import (
    VRiscvSemantics,
    machine_entry_state,
    parse_machine_function,
)
from repro.vriscv.parser import MachineParseError


def run_to_halt(semantics, state, limit=300):
    frontier = [state]
    halted = []
    for _ in range(limit):
        advanced = []
        for current in frontier:
            successors = semantics.step(current)
            if successors:
                advanced.extend(successors)
            else:
                halted.append(current)
        if not advanced:
            return halted
        frontier = advanced
    raise AssertionError("did not halt")


def run_function(source, registers=None, objects=()):
    function = parse_machine_function(source)
    semantics = VRiscvSemantics({function.name: function})
    memory = Memory.create([MemoryObject(n, s) for n, s in objects])
    state = machine_entry_state(function, memory, registers or {})
    return run_to_halt(semantics, state)


class TestParser:
    def test_abi_register_widths(self):
        function = parse_machine_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY a1.32\n  ret\n"
        )
        operand = function.entry_block.instructions[0].operands[0]
        assert operand.name == "a1" and operand.width == 32

    def test_branch_needs_label(self):
        with pytest.raises(MachineParseError):
            parse_machine_function("f:\n.LBB0:\n  beq %vr0_32, %vr1_32\n  ret\n")

    def test_malformed_vreg_rejected(self):
        with pytest.raises(MachineParseError):
            parse_machine_function("f:\n.LBB0:\n  %vr0_32 = COPY %x\n  ret\n")


class TestZeroRegister:
    def test_read_yields_zero(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = add zero.32, 5\n"
            "  a0.32 = COPY %vr0_32\n  ret\n"
        )
        assert halted[0].returned.value == 5

    def test_write_is_discarded(self):
        halted = run_function(
            "f:\n.LBB0:\n  zero = li 99\n  %vr0_64 = COPY zero\n"
            "  a0 = COPY %vr0_64\n  ret\n"
        )
        assert halted[0].returned.value == 0
        assert "zero" not in halted[0].env


class TestRegisterSemantics:
    def test_narrow_write_zero_extends(self):
        halted = run_function(
            "f:\n.LBB0:\n  a0.32 = COPY a1.32\n  ret\n",
            registers={"a1": t.bv_const(0xFFFFFFFF_FFFFFFFF, 64)},
        )
        assert halted[0].returned.value == 0x00000000_FFFFFFFF

    def test_unwritten_register_reads_named_unknown(self):
        halted = run_function("f:\n.LBB0:\n  %vr0_64 = COPY t3\n  ret\n")
        assert halted[0].env["vr0_64"] is t.bv_var("reg_t3", 64)


class TestAluAndCompares:
    def test_add_and_compare(self):
        source = (
            "f:\n.LBB0:\n  %vr0_32 = COPY a0.32\n"
            "  %vr1_32 = add %vr0_32, 3\n"
            "  %vr2_8 = sltu %vr0_32, %vr1_32\n"
            "  a0.8 = COPY %vr2_8\n  ret\n"
        )
        halted = run_function(source, registers={"a0": t.bv_const(5, 64)})
        assert halted[0].returned.value == 1

    def test_slt_signed(self):
        source = (
            "f:\n.LBB0:\n  %vr0_32 = COPY a0.32\n  %vr1_32 = COPY a1.32\n"
            "  %vr2_8 = slt %vr0_32, %vr1_32\n  a0.8 = COPY %vr2_8\n  ret\n"
        )
        less = run_function(
            source,
            registers={
                "a0": t.bv_const(0xFFFFFFFF, 64),  # -1 as i32
                "a1": t.bv_const(1, 64),
            },
        )
        assert less[0].returned.value == 1

    def test_seqz_snez(self):
        source = (
            "f:\n.LBB0:\n  %vr0_32 = COPY a0.32\n"
            "  %vr1_8 = seqz %vr0_32\n  a0.8 = COPY %vr1_8\n  ret\n"
        )
        zero = run_function(source, registers={"a0": t.bv_const(0, 64)})
        nonzero = run_function(source, registers={"a0": t.bv_const(3, 64)})
        assert zero[0].returned.value == 1
        assert nonzero[0].returned.value == 0

    def test_shift_masks_count(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY a0.32\n"
            "  %vr1_32 = sll %vr0_32, 33\n  a0.32 = COPY %vr1_32\n  ret\n",
            registers={"a0": t.bv_const(1, 64)},
        )
        # Shift counts are masked to width-1 bits: 33 & 31 == 1.
        assert halted[0].returned.value == 2


class TestNonTrappingDivision:
    def test_div_by_zero_is_all_ones(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY a0.32\n  %vr1_32 = li 0\n"
            "  %vr2_32 = divu %vr0_32, %vr1_32\n  a0.32 = COPY %vr2_32\n  ret\n",
            registers={"a0": t.bv_const(7, 64)},
        )
        assert len(halted) == 1  # single successor: no error branch
        assert halted[0].status is StatusKind.EXITED
        assert halted[0].returned.value == 0xFFFFFFFF

    def test_rem_by_zero_is_dividend(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY a0.32\n  %vr1_32 = li 0\n"
            "  %vr2_32 = rem %vr0_32, %vr1_32\n  a0.32 = COPY %vr2_32\n  ret\n",
            registers={"a0": t.bv_const(7, 64)},
        )
        assert halted[0].returned.value == 7

    def test_int_min_over_minus_one_wraps(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY a0.32\n  %vr1_32 = COPY a1.32\n"
            "  %vr2_32 = div %vr0_32, %vr1_32\n  a0.32 = COPY %vr2_32\n  ret\n",
            registers={
                "a0": t.bv_const(0x80000000, 64),
                "a1": t.bv_const(0xFFFFFFFF, 64),
            },
        )
        assert halted[0].returned.value == 0x80000000


class TestBranches:
    def test_fused_blt_taken_and_not(self):
        source = (
            "f:\n.LBB0:\n  %vr0_32 = COPY a0.32\n  %vr1_32 = COPY a1.32\n"
            "  blt %vr0_32, %vr1_32, .LBB1\n  j .LBB2\n"
            ".LBB1:\n  a0.32 = li 1\n  ret\n"
            ".LBB2:\n  a0.32 = li 0\n  ret\n"
        )
        taken = run_function(
            source,
            registers={"a0": t.bv_const(1, 64), "a1": t.bv_const(2, 64)},
        )
        not_taken = run_function(
            source,
            registers={"a0": t.bv_const(2, 64), "a1": t.bv_const(1, 64)},
        )
        # Concrete inputs decide the branch: only the matching arm exits.
        exited = [s for s in taken if s.status is StatusKind.EXITED]
        assert any(s.returned.value == 1 for s in exited)
        exited = [s for s in not_taken if s.status is StatusKind.EXITED]
        assert any(s.returned.value == 0 for s in exited)

    def test_branch_against_zero_register(self):
        source = (
            "f:\n.LBB0:\n  %vr0_8 = COPY a0.8\n"
            "  bne %vr0_8, zero.8, .LBB1\n  j .LBB2\n"
            ".LBB1:\n  a0.32 = li 1\n  ret\n"
            ".LBB2:\n  a0.32 = li 0\n  ret\n"
        )
        halted = run_function(source, registers={"a0": t.bv_const(1, 64)})
        exited = [s for s in halted if s.status is StatusKind.EXITED]
        assert any(s.returned.value == 1 for s in exited)


class TestSelAndMemory:
    def test_sel_picks_by_condition(self):
        source = (
            "f:\n.LBB0:\n  %vr0_8 = COPY a0.8\n"
            "  %vr1_32 = li 10\n  %vr2_32 = li 20\n"
            "  %vr3_32 = sel %vr0_8, %vr1_32, %vr2_32\n"
            "  a0.32 = COPY %vr3_32\n  ret\n"
        )
        true_case = run_function(source, registers={"a0": t.bv_const(1, 64)})
        false_case = run_function(source, registers={"a0": t.bv_const(0, 64)})
        assert true_case[0].returned.value == 10
        assert false_case[0].returned.value == 20

    def test_store_load_roundtrip(self):
        halted = run_function(
            "f:\nframe stack.f.x, 4\n.LBB0:\n"
            "  store32 [stack.f.x], 42\n"
            "  %vr0_32 = load [stack.f.x]\n"
            "  a0.32 = COPY %vr0_32\n  ret\n"
        )
        assert halted[0].returned.value == 42

    def test_la_then_indirect_store(self):
        halted = run_function(
            "f:\nframe stack.f.x, 4\n.LBB0:\n"
            "  %vr0_64 = la [stack.f.x]\n"
            "  store32 [%vr0_64], 9\n"
            "  %vr1_32 = load [%vr0_64]\n"
            "  a0.32 = COPY %vr1_32\n  ret\n"
        )
        assert halted[0].returned.value == 9

    def test_oob_load_errors(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = load [g + 12]\n  ret\n",
            objects=(("g", 8),),
        )
        # The sole feasible state is the out-of-bounds error branch.
        assert any(s.status is StatusKind.ERROR for s in halted)


class TestCallsAndReturn:
    def test_call_pauses_with_arguments(self):
        function = parse_machine_function(
            "f:\n.LBB0:\n  call @g, a0, a1\n  ret\n"
        )
        semantics = VRiscvSemantics({function.name: function})
        state = machine_entry_state(
            function,
            Memory.create([]),
            {"a0": t.bv_const(1, 64), "a1": t.bv_const(2, 64)},
        )
        (paused,) = semantics.step(state)
        assert paused.status is StatusKind.CALLING
        assert paused.call.callee == "g"
        assert paused.call.result_name == "a0"
        assert [value.value for value in paused.call.arguments] == [1, 2]

    def test_ret_returns_a0(self):
        halted = run_function(
            "f:\n.LBB0:\n  a0 = li 5\n  ret\n"
        )
        assert halted[0].returned.value == 5
