"""Tests for the LLVM IR textual parser."""

import pytest

from repro.llvm import ir, parse_module
from repro.llvm.parser import ParseError
from repro.llvm.types import ArrayType, IntType, PointerType, StructType


def parse_single(body: str, signature: str = "define i32 @f(i32 %x)") -> ir.Function:
    module = parse_module(f"{signature} {{\nentry:\n{body}\n}}")
    return next(iter(module.functions.values()))


class TestTypes:
    def test_integer_types(self):
        function = parse_single("%a = add i16 7, 8\n  ret i32 %x")
        instruction = function.entry_block.instructions[0]
        assert instruction.type == IntType(16)

    def test_wide_integer_type(self):
        module = parse_module("@a = external global i96")
        assert module.globals["a"].type == IntType(96)

    def test_array_type(self):
        module = parse_module("@b = external global [8 x i8]")
        assert module.globals["b"].type == ArrayType(IntType(8), 8)

    def test_nested_array_type(self):
        module = parse_module("@m = external global [2 x [3 x i32]]")
        assert module.globals["m"].type == ArrayType(ArrayType(IntType(32), 3), 2)

    def test_struct_type(self):
        module = parse_module("@s = external global { i32, i64 }")
        assert module.globals["s"].type == StructType((IntType(32), IntType(64)))

    def test_pointer_type(self):
        function = parse_single("%p = alloca i32\n  ret i32 %x")
        assert function.entry_block.instructions[0].allocated_type == IntType(32)


class TestInstructions:
    def test_binop_with_flags(self):
        function = parse_single("%a = add nsw i32 %x, 1\n  ret i32 %a")
        instruction = function.entry_block.instructions[0]
        assert instruction.flags == ("nsw",)

    def test_icmp(self):
        function = parse_single("%c = icmp ult i32 %x, 10\n  ret i32 %x")
        instruction = function.entry_block.instructions[0]
        assert instruction.predicate == "ult"

    def test_bad_icmp_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_single("%c = icmp weird i32 %x, 10\n  ret i32 %x")

    def test_phi(self):
        module = parse_module(
            """
define i32 @f(i32 %x) {
entry:
  br label %next
next:
  %v = phi i32 [ %x, %entry ]
  ret i32 %v
}
"""
        )
        function = module.functions["f"]
        phi = function.block("next").instructions[0]
        assert isinstance(phi, ir.Phi)
        assert phi.incomings[0][1] == "entry"

    def test_load_with_align(self):
        function = parse_single(
            "%p = alloca i32\n  %v = load i32, i32* %p, align 4\n  ret i32 %v"
        )
        load = function.entry_block.instructions[1]
        assert isinstance(load, ir.Load)

    def test_store(self):
        function = parse_single(
            "%p = alloca i32\n  store i32 %x, i32* %p\n  ret i32 %x"
        )
        store = function.entry_block.instructions[1]
        assert isinstance(store, ir.Store)

    def test_gep_instruction(self):
        module = parse_module(
            """
@b = external global [8 x i8]
define i8* @f(i64 %i) {
entry:
  %p = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 %i
  ret i8* %p
}
"""
        )
        gep = module.functions["f"].entry_block.instructions[0]
        assert isinstance(gep, ir.Gep)
        assert gep.inbounds
        assert len(gep.indices) == 2

    def test_call_with_result(self):
        function = parse_single("%r = call i32 @g(i32 %x)\n  ret i32 %r")
        call = function.entry_block.instructions[0]
        assert call.callee == "g"
        assert call.name == "r"

    def test_void_call(self):
        function = parse_single("call void @g()\n  ret i32 %x")
        call = function.entry_block.instructions[0]
        assert call.name is None

    def test_casts(self):
        function = parse_single(
            "%w = zext i32 %x to i64\n"
            "  %n = trunc i64 %w to i16\n"
            "  %s = sext i16 %n to i32\n"
            "  ret i32 %s"
        )
        ops = [i.op for i in function.entry_block.instructions[:3]]
        assert ops == ["zext", "sext"][0:1] + ["trunc", "sext"][0:2] or True
        assert [i.op for i in function.entry_block.instructions[:3]] == [
            "zext",
            "trunc",
            "sext",
        ]

    def test_conditional_branch(self):
        module = parse_module(
            """
define i32 @f(i32 %x) {
entry:
  %c = icmp eq i32 %x, 0
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
"""
        )
        branch = module.functions["f"].entry_block.terminator
        assert branch.true_target == "a" and branch.false_target == "b"


class TestConstExprs:
    def test_paper_waw_store_operand(self):
        module = parse_module(
            """
@b = external global [8 x i8]
define void @foo() {
entry:
  store i16 0, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 2) to i16*)
  ret void
}
"""
        )
        store = module.functions["foo"].entry_block.instructions[0]
        cast = store.pointer
        assert isinstance(cast, ir.ConstCast)
        gep = cast.operand
        assert isinstance(gep, ir.ConstGep)
        assert gep.indices[1].value == 2

    def test_paper_i96_module(self):
        module = parse_module(
            """
@a = external global i96, align 4
@b = external global i64, align 8
define void @foo() {
  %srcval = load i96, i96* @a, align 4
  %tmp96 = lshr i96 %srcval, 64
  %tmp64 = trunc i96 %tmp96 to i64
  store i64 %tmp64, i64* @b, align 8
  ret void
}
"""
        )
        function = module.functions["foo"]
        # Label-less entry block is synthesized.
        assert function.entry_block.name == "entry"
        assert len(function.entry_block.instructions) == 5


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_single("%v = frobnicate i32 %x\n  ret i32 %x")

    def test_duplicate_function(self):
        with pytest.raises(ValueError):
            parse_module(
                "define void @f() {\n ret void\n}\n"
                "define void @f() {\n ret void\n}"
            )

    def test_comments_and_whitespace_ignored(self):
        function = parse_single(
            "; leading comment\n  %a = add i32 %x, 1 ; trailing\n  ret i32 %a"
        )
        assert len(function.entry_block.instructions) == 2

    def test_roundtrip_printing(self):
        source = """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  ret i32 %a
}
"""
        module = parse_module(source)
        reparsed = parse_module(str(module))
        assert str(reparsed) == str(module)
