"""Tests for the select instruction across the whole pipeline."""

from repro.llvm import LlvmSemantics, entry_state, parse_module
from repro.semantics.state import StatusKind
from repro.smt import t
from repro.tv import validate_function

SMAX = """
define i32 @smax(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  %m = select i1 %c, i32 %a, i32 %b
  ret i32 %m
}
"""


def run_concrete(source, name, arguments):
    module = parse_module(source)
    function = module.function(name)
    semantics = LlvmSemantics(module)
    bound = {
        pname: t.bv_const(value, 32)
        for (pname, _), value in zip(function.parameters, arguments)
    }
    state = entry_state(module, function, arguments=bound)
    frontier = [state]
    while frontier:
        advanced = []
        for current in frontier:
            successors = semantics.step(current)
            if not successors:
                assert current.status is StatusKind.EXITED
                return current
            advanced.extend(
                s for s in successors if s.path_condition is t.TRUE
            )
        frontier = advanced
    raise AssertionError


class TestSelectSemantics:
    def test_concrete_max(self):
        assert run_concrete(SMAX, "smax", [3, 9]).returned.value == 9
        assert run_concrete(SMAX, "smax", [9, 3]).returned.value == 9

    def test_signed_comparison(self):
        negative = 0xFFFFFFFF  # -1
        assert run_concrete(SMAX, "smax", [negative, 1]).returned.value == 1

    def test_symbolic_select_builds_ite(self):
        module = parse_module(SMAX)
        function = module.function("smax")
        semantics = LlvmSemantics(module)
        state = entry_state(module, function)
        while state.status is StatusKind.RUNNING:
            (state,) = semantics.step(state)
        assert state.returned.op == "ite"

    def test_parser_roundtrip(self):
        module = parse_module(SMAX)
        reparsed = parse_module(str(module))
        assert str(reparsed) == str(module)


class TestSelectValidation:
    def test_fused_cmov_validates(self):
        assert validate_function(parse_module(SMAX), "smax").ok

    def test_select_of_pointers_validates(self):
        source = """
@a = external global i32
@b = external global i32
define i32 @pick(i32 %k) {
entry:
  %c = icmp eq i32 %k, 0
  %p = select i1 %c, i32* @a, i32* @b
  %v = load i32, i32* %p
  ret i32 %v
}
"""
        outcome = validate_function(parse_module(source), "pick")
        assert outcome.ok, outcome.detail

    def test_chained_selects_validate(self):
        source = """
define i32 @clamp(i32 %x, i32 %lo, i32 %hi) {
entry:
  %c1 = icmp slt i32 %x, %lo
  %m1 = select i1 %c1, i32 %lo, i32 %x
  %c2 = icmp sgt i32 %m1, %hi
  %m2 = select i1 %c2, i32 %hi, i32 %m1
  ret i32 %m2
}
"""
        assert validate_function(parse_module(source), "clamp").ok

    def test_select_inside_loop_validates(self):
        source = """
define i32 @maxscan(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %best = phi i32 [ 0, %entry ], [ %best2, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %x = xor i32 %i, 21
  %g = icmp ugt i32 %x, %best
  %best2 = select i1 %g, i32 %x, i32 %best
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %best
}
"""
        assert validate_function(parse_module(source), "maxscan").ok
