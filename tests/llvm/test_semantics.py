"""Tests for the LLVM IR symbolic semantics."""

import pytest

from repro.llvm import LlvmSemantics, entry_state, parse_module
from repro.llvm.semantics import SemanticsError
from repro.memory import PointerValue
from repro.semantics.state import ErrorInfo, StatusKind
from repro.smt import Solver, simplify, t
from repro.smt.eval import evaluate


def run_to_halt(semantics, state, limit=500):
    frontier = [state]
    halted = []
    for _ in range(limit):
        advanced = []
        for current in frontier:
            successors = semantics.step(current)
            if successors:
                advanced.extend(successors)
            else:
                halted.append(current)
        if not advanced:
            return halted
        frontier = advanced
    raise AssertionError("did not halt")


def setup(source):
    module = parse_module(source)
    function = next(iter(module.functions.values()))
    semantics = LlvmSemantics(module)
    return module, function, semantics


class TestArithmetic:
    def test_add_builds_term(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 5\n  ret i32 %a\n}"
        )
        (final,) = run_to_halt(semantics, entry_state(module, function))
        assert final.status is StatusKind.EXITED
        assert final.returned is t.add(t.bv_var("arg_x", 32), t.bv_const(5, 32))

    def test_concrete_folding(self):
        module, function, semantics = setup(
            "define i32 @f() {\nentry:\n  %a = mul i32 6, 7\n  ret i32 %a\n}"
        )
        (final,) = run_to_halt(semantics, entry_state(module, function))
        assert final.returned.value == 42

    def test_division_produces_error_branch(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x, i32 %y) {\nentry:\n"
            "  %q = udiv i32 %x, %y\n  ret i32 %q\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        kinds = sorted(s.status.value for s in halted)
        assert kinds == ["error", "exited"]
        error = next(s for s in halted if s.status is StatusKind.ERROR)
        assert error.error.kind == ErrorInfo.DIV_BY_ZERO

    def test_division_by_nonzero_const_no_error_branch(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x) {\nentry:\n  %q = udiv i32 %x, 4\n  ret i32 %q\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        assert len(halted) == 1 and halted[0].status is StatusKind.EXITED

    def test_sdiv_overflow_error_branch(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x, i32 %y) {\nentry:\n"
            "  %q = sdiv i32 %x, %y\n  ret i32 %q\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        kinds = {s.error.kind for s in halted if s.status is StatusKind.ERROR}
        assert kinds == {ErrorInfo.DIV_BY_ZERO, ErrorInfo.SIGNED_OVERFLOW}

    def test_nsw_overflow_error_branch(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %a = add nsw i32 %x, 1\n  ret i32 %a\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        error = next(s for s in halted if s.status is StatusKind.ERROR)
        assert error.error.kind == ErrorInfo.SIGNED_OVERFLOW
        # The overflow branch is exactly x == INT_MAX.
        solver = Solver()
        witness = t.eq(t.bv_var("arg_x", 32), t.bv_const(0x7FFFFFFF, 32))
        assert solver.prove(t.iff(error.path_condition, witness))

    def test_plain_add_has_no_error_branch(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 1\n  ret i32 %a\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        assert len(halted) == 1


class TestControlFlow:
    LOOP = """
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %acc2 = add i32 %acc, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %acc
}
"""

    def test_branch_splits_state(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %c = icmp eq i32 %x, 0\n"
            "  br i1 %c, label %a, label %b\n"
            "a:\n  ret i32 1\nb:\n  ret i32 2\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        returned = sorted(s.returned.value for s in halted)
        assert returned == [1, 2]

    def test_branch_path_conditions_partition(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %c = icmp eq i32 %x, 0\n"
            "  br i1 %c, label %a, label %b\n"
            "a:\n  ret i32 1\nb:\n  ret i32 2\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        pc1, pc2 = (s.path_condition for s in halted)
        assert simplify(t.and_(pc1, pc2)) is t.FALSE
        assert simplify(t.or_(pc1, pc2)) is t.TRUE

    def test_phi_selects_by_predecessor(self):
        module = parse_module(self.LOOP)
        function = module.functions["sum"]
        semantics = LlvmSemantics(module)
        state = entry_state(
            module, function, arguments={"n": t.bv_const(3, 32)}
        )
        halted = run_to_halt(semantics, state)
        assert len(halted) == 1
        # sum 0+1+2 = 3
        assert halted[0].returned.value == 3

    def test_symbolic_loop_unrolls_per_path(self):
        module = parse_module(self.LOOP)
        function = module.functions["sum"]
        semantics = LlvmSemantics(module)
        state = entry_state(module, function)
        # Step a bounded number of times; multiple exits with different
        # iteration counts must coexist.
        frontier = [state]
        exits = []
        for _ in range(40):
            advanced = []
            for current in frontier:
                for successor in semantics.step(current):
                    if successor.status is StatusKind.EXITED:
                        exits.append(successor)
                    else:
                        advanced.append(successor)
            frontier = advanced
        assert len(exits) >= 2

    def test_concrete_loop_agrees_with_python(self):
        module = parse_module(self.LOOP)
        function = module.functions["sum"]
        semantics = LlvmSemantics(module)
        for n in (0, 1, 5):
            state = entry_state(
                module, function, arguments={"n": t.bv_const(n, 32)}
            )
            (final,) = run_to_halt(semantics, state)
            assert final.returned.value == sum(range(n))


class TestMemory:
    def test_alloca_store_load_roundtrip(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %p = alloca i32\n"
            "  store i32 %x, i32* %p\n"
            "  %v = load i32, i32* %p\n"
            "  ret i32 %v\n}"
        )
        (final,) = run_to_halt(semantics, entry_state(module, function))
        assert final.returned is t.bv_var("arg_x", 32)

    def test_global_store_visible(self):
        module, function, semantics = setup(
            "@g = external global i32\n"
            "define i32 @f() {\nentry:\n"
            "  store i32 7, i32* @g\n"
            "  %v = load i32, i32* @g\n"
            "  ret i32 %v\n}"
        )
        (final,) = run_to_halt(semantics, entry_state(module, function))
        assert final.returned.value == 7

    def test_gep_constant_indexing(self):
        module, function, semantics = setup(
            "@arr = external global [4 x i32]\n"
            "define i32 @f() {\nentry:\n"
            "  %p = getelementptr inbounds [4 x i32], [4 x i32]* @arr, i64 0, i64 2\n"
            "  store i32 9, i32* %p\n"
            "  %v = load i32, i32* %p\n"
            "  ret i32 %v\n}"
        )
        (final,) = run_to_halt(semantics, entry_state(module, function))
        assert final.returned.value == 9

    def test_gep_symbolic_index_oob_branch(self):
        module, function, semantics = setup(
            "@arr = external global [4 x i32]\n"
            "define i32 @f(i64 %i) {\nentry:\n"
            "  %p = getelementptr inbounds [4 x i32], [4 x i32]* @arr, i64 0, i64 %i\n"
            "  %v = load i32, i32* %p\n"
            "  ret i32 %v\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        errors = [s for s in halted if s.status is StatusKind.ERROR]
        assert len(errors) == 1
        assert errors[0].error.kind == ErrorInfo.OUT_OF_BOUNDS
        # In-bounds witness i=3 satisfies the exit path, i=4 the error path.
        exit_state = next(s for s in halted if s.status is StatusKind.EXITED)
        assert evaluate(exit_state.path_condition, {"arg_i": 3}) is True
        assert evaluate(errors[0].path_condition, {"arg_i": 4}) is True

    def test_oob_constant_access_always_errors(self):
        module, function, semantics = setup(
            "@arr = external global [4 x i8]\n"
            "define i32 @f() {\nentry:\n"
            "  %p = getelementptr inbounds [4 x i8], [4 x i8]* @arr, i64 0, i64 2\n"
            "  %q = bitcast i8* %p to i32*\n"
            "  %v = load i32, i32* %q\n"
            "  ret i32 %v\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        assert len(halted) == 1
        assert halted[0].status is StatusKind.ERROR

    def test_ptrtoint_inttoptr_roundtrip(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %p = alloca i32\n"
            "  store i32 %x, i32* %p\n"
            "  %n = ptrtoint i32* %p to i64\n"
            "  %q = inttoptr i64 %n to i32*\n"
            "  %v = load i32, i32* %q\n"
            "  ret i32 %v\n}"
        )
        (final,) = run_to_halt(semantics, entry_state(module, function))
        assert final.returned is t.bv_var("arg_x", 32)


class TestCalls:
    def test_call_pauses_state(self):
        module, function, semantics = setup(
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %r = call i32 @g(i32 %x)\n"
            "  %a = add i32 %r, 1\n"
            "  ret i32 %a\n}"
        )
        halted = run_to_halt(semantics, entry_state(module, function))
        assert len(halted) == 1
        state = halted[0]
        assert state.status is StatusKind.CALLING
        assert state.call.callee == "g"
        assert state.call.arguments[0] is t.bv_var("arg_x", 32)
        assert state.call.result_name == "r"

    def test_undef_rejected(self):
        module, function, semantics = setup(
            "define i32 @f() {\nentry:\n  %a = add i32 undef, 1\n  ret i32 %a\n}"
        )
        with pytest.raises(SemanticsError):
            run_to_halt(semantics, entry_state(module, function))


class TestPointerEquality:
    def test_same_object_pointer_compare(self):
        module, function, semantics = setup(
            "@g = external global [4 x i8]\n"
            "define i1 @f() {\nentry:\n"
            "  %p = getelementptr inbounds [4 x i8], [4 x i8]* @g, i64 0, i64 1\n"
            "  %q = getelementptr inbounds [4 x i8], [4 x i8]* @g, i64 0, i64 1\n"
            "  %c = icmp eq i8* %p, %q\n"
            "  ret i1 %c\n}"
        )
        (final,) = run_to_halt(semantics, entry_state(module, function))
        assert final.returned.value == 1
