"""Tests for the CFG analyses: dominators, loops, liveness."""

from repro.analysis import (
    LlvmGraph,
    MachineGraph,
    dominator_tree,
    dominators,
    liveness,
    loop_headers,
    natural_loops,
)
from repro.analysis.dominators import dominates
from repro.llvm import parse_module
from repro.vx86 import parse_machine_function

LOOP_FN = """
define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %latch ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  br label %latch
latch:
  %inc = add i32 %i, 1
  br label %head
exit:
  ret i32 %i
}
"""

NESTED_FN = """
define i32 @g(i32 %n) {
entry:
  br label %outer
outer:
  %i = phi i32 [ 0, %entry ], [ %i2, %outer.latch ]
  %c1 = icmp ult i32 %i, %n
  br i1 %c1, label %inner, label %done
inner:
  %j = phi i32 [ 0, %outer ], [ %j2, %inner ]
  %j2 = add i32 %j, 1
  %c2 = icmp ult i32 %j2, %n
  br i1 %c2, label %inner, label %outer.latch
outer.latch:
  %i2 = add i32 %i, 1
  br label %outer
done:
  ret i32 %i
}
"""


def llvm_graph(source):
    module = parse_module(source)
    return LlvmGraph(next(iter(module.functions.values())))


class TestDominators:
    def test_entry_dominates_everything(self):
        graph = llvm_graph(LOOP_FN)
        doms = dominators(graph)
        for block in graph.block_names():
            assert dominates(doms, "entry", block)

    def test_header_dominates_body_and_latch(self):
        doms = dominators(llvm_graph(LOOP_FN))
        assert dominates(doms, "head", "body")
        assert dominates(doms, "head", "latch")
        assert not dominates(doms, "body", "head")

    def test_idom_tree_shape(self):
        tree = dominator_tree(llvm_graph(LOOP_FN))
        assert tree["entry"] is None
        assert tree["head"] == "entry"
        assert tree["exit"] == "head"

    def test_diamond_join_dominated_by_fork(self):
        graph = llvm_graph(
            """
define i32 @d(i32 %x) {
entry:
  %c = icmp eq i32 %x, 0
  br i1 %c, label %a, label %b
a:
  br label %j
b:
  br label %j
j:
  ret i32 %x
}
"""
        )
        doms = dominators(graph)
        assert dominates(doms, "entry", "j")
        assert not dominates(doms, "a", "j")


class TestLoops:
    def test_single_loop_detected(self):
        loops = natural_loops(llvm_graph(LOOP_FN))
        assert len(loops) == 1
        assert loops[0].header == "head"
        assert loops[0].body == {"head", "body", "latch"}

    def test_nested_loops_detected(self):
        headers = loop_headers(llvm_graph(NESTED_FN))
        assert sorted(headers) == ["inner", "outer"]

    def test_inner_loop_body_subset_of_outer(self):
        loops = {l.header: l for l in natural_loops(llvm_graph(NESTED_FN))}
        assert loops["inner"].body < loops["outer"].body

    def test_loop_free_function_has_no_loops(self):
        graph = llvm_graph(
            "define i32 @h(i32 %x) {\nentry:\n  ret i32 %x\n}"
        )
        assert natural_loops(graph) == []

    def test_machine_side_loops_match(self):
        machine = parse_machine_function(
            "f:\n.LBB0:\n  jmp .LBB1\n.LBB1:\n  cmp edi, esi\n"
            "  jb .LBB2\n  jmp .LBB3\n.LBB2:\n  jmp .LBB1\n.LBB3:\n  ret\n"
        )
        assert loop_headers(MachineGraph(machine)) == [".LBB1"]


class TestLiveness:
    def test_parameter_live_into_loop(self):
        graph = llvm_graph(LOOP_FN)
        result = liveness(graph)
        assert "n" in result.live_in["head"]

    def test_phi_result_not_live_on_entry_edge(self):
        graph = llvm_graph(LOOP_FN)
        result = liveness(graph)
        edge = result.edge_live("entry", "head")
        assert "i" not in edge  # the phi result is defined at the header
        assert "n" in edge

    def test_phi_incoming_live_on_latch_edge(self):
        graph = llvm_graph(LOOP_FN)
        result = liveness(graph)
        edge = result.edge_live("latch", "head")
        assert "inc" in edge
        assert "n" in edge

    def test_dead_value_not_live(self):
        graph = llvm_graph(
            "define i32 @h(i32 %x) {\nentry:\n  %dead = add i32 %x, 1\n"
            "  br label %next\nnext:\n  ret i32 %x\n}"
        )
        result = liveness(graph)
        assert "dead" not in result.live_in["next"]

    def test_imprecise_mode_overapproximates(self):
        graph = llvm_graph(LOOP_FN)
        precise = liveness(graph)
        imprecise = liveness(graph, imprecise=True)
        entry_edge_precise = precise.edge_live("entry", "head")
        entry_edge_imprecise = imprecise.edge_live("entry", "head")
        assert entry_edge_precise <= entry_edge_imprecise
        # The latch incoming leaks onto the entry edge — the inadequacy.
        assert "inc" in entry_edge_imprecise
        assert "inc" not in entry_edge_precise

    def test_machine_liveness_tracks_vregs(self):
        machine = parse_machine_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  jmp .LBB1\n"
            ".LBB1:\n  eax = COPY %vr0_32\n  ret\n"
        )
        result = liveness(MachineGraph(machine))
        assert "vr0_32" in result.live_in[".LBB1"]
