"""Unit tests for the acceptability relation's error-state policy (§4.6)."""

from repro.keq.acceptability import (
    Acceptability,
    default_acceptability,
    strict_acceptability,
)
from repro.memory import Memory
from repro.semantics.state import ErrorInfo, Location, ProgramState


def state(error_kind: str | None = None) -> ProgramState:
    base = ProgramState(
        location=Location("f", "entry", 0), env={}, memory=Memory.create([])
    )
    if error_kind is None:
        return base
    return base.errored(error_kind)


class TestDefaultPolicy:
    def test_left_error_accepted_against_anything(self):
        policy = default_acceptability()
        assert policy.left_error_accepted(state(ErrorInfo.OUT_OF_BOUNDS))
        assert policy.left_error_accepted(state(ErrorInfo.DIV_BY_ZERO))

    def test_running_state_not_blanket_accepted(self):
        policy = default_acceptability()
        assert not policy.left_error_accepted(state())

    def test_matching_error_kinds_related(self):
        policy = default_acceptability()
        assert policy.error_pair_related(
            state(ErrorInfo.OUT_OF_BOUNDS), state(ErrorInfo.OUT_OF_BOUNDS)
        )

    def test_mismatched_error_kinds_unrelated(self):
        """The paper: the x86 OOB error state is related ONLY to the LLVM
        OOB error state."""
        policy = default_acceptability()
        assert not policy.error_pair_related(
            state(ErrorInfo.OUT_OF_BOUNDS), state(ErrorInfo.DIV_BY_ZERO)
        )

    def test_error_pair_requires_both_errors(self):
        policy = default_acceptability()
        assert not policy.error_pair_related(state(), state(ErrorInfo.DIV_BY_ZERO))
        assert not policy.error_pair_related(state(ErrorInfo.DIV_BY_ZERO), state())


class TestStrictPolicy:
    def test_left_errors_not_blanket_accepted(self):
        policy = strict_acceptability()
        assert not policy.left_error_accepted(state(ErrorInfo.OUT_OF_BOUNDS))

    def test_error_pairs_still_match_by_kind(self):
        policy = strict_acceptability()
        assert policy.error_pair_related(
            state(ErrorInfo.DIV_BY_ZERO), state(ErrorInfo.DIV_BY_ZERO)
        )


class TestCustomMatcher:
    def test_custom_error_matcher(self):
        """A client may coarsen the matching (e.g. any UB matches any UB)."""
        policy = Acceptability(error_matcher=lambda left, right: True)
        assert policy.error_pair_related(
            state(ErrorInfo.OUT_OF_BOUNDS), state(ErrorInfo.SIGNED_OVERFLOW)
        )
