"""Unit tests for synchronization-point instantiation (the shared-symbol
construction at the heart of the symbolic Algorithm 1)."""

from repro.keq import (
    EqConstraint,
    Expr,
    Keq,
    StateSpec,
    SyncPoint,
    default_acceptability,
)
from repro.memory import MemoryObject, PointerValue
from repro.semantics.state import Location
from repro.smt import simplify, t


class _NullSemantics:
    language_name = "null"
    deterministic = True

    def step(self, state):
        return []


def keq():
    return Keq(_NullSemantics(), _NullSemantics(), default_acceptability())


def point(constraints, memory_objects=(), name="p"):
    return SyncPoint(
        name=name,
        kind="loop",
        left=StateSpec.at(Location("f", "L", 0)),
        right=StateSpec.at(Location("g", "R", 0)),
        constraints=tuple(constraints),
        memory_objects=tuple(memory_objects),
    )


class TestSharedSymbols:
    def test_env_env_share_one_symbol(self):
        left, right = keq().instantiate(
            point([EqConstraint(Expr.env("a", 32), Expr.env("vr0_32", 32))])
        )
        assert left.env["a"] is right.env["vr0_32"]

    def test_lit_constraint_binds_constant(self):
        left, right = keq().instantiate(
            point([EqConstraint(Expr.lit(7, 32), Expr.env("vr0_32", 32))])
        )
        assert right.env["vr0_32"].value == 7

    def test_chained_constraints_unify(self):
        # a = vr0 and a = vr1 must give vr0 == vr1 the same symbol.
        left, right = keq().instantiate(
            point(
                [
                    EqConstraint(Expr.env("a", 32), Expr.env("vr0_32", 32)),
                    EqConstraint(Expr.env("a", 32), Expr.env("vr1_32", 32)),
                ]
            )
        )
        assert right.env["vr0_32"] is right.env["vr1_32"]

    def test_physical_subregister_gets_junk_upper_bits(self):
        """A 32-bit constraint on rdi must NOT assume the upper 32 bits are
        zero (the calling convention doesn't zero them).  The VC generator
        expresses this with `junk_upper`, keeping KEQ register-agnostic."""
        left, right = keq().instantiate(
            point(
                [
                    EqConstraint(
                        Expr.env("a", 32),
                        Expr.env("rdi", 32),
                        junk_upper="right",
                    )
                ]
            )
        )
        rdi = right.env["rdi"]
        assert rdi.width == 64
        low = simplify(t.trunc(rdi, 32))
        assert low is left.env["a"]
        high = simplify(t.extract(rdi, 63, 32))
        assert not high.is_const()  # junk, not zero

    def test_i1_to_byte_constraint_zero_extends(self):
        """width-1 = width-8 denotes zext(l) == r: the byte's upper bits
        ARE zero (setcc writes 0/1)."""
        left, right = keq().instantiate(
            point([EqConstraint(Expr.env("c", 1), Expr.env("vr0_8", 8))])
        )
        byte = right.env["vr0_8"]
        assert byte.width == 8
        assert simplify(t.extract(byte, 7, 1)) is t.zero(7)
        assert simplify(t.trunc(byte, 1)) is left.env["c"]

    def test_pointer_constraint_builds_pointer_values(self):
        left, right = keq().instantiate(
            point(
                [
                    EqConstraint(
                        Expr.env("p", 64),
                        Expr.env("vr0_64", 64),
                        pointer_object="stack.f.x",
                    )
                ],
                memory_objects=[MemoryObject("stack.f.x", 8)],
            )
        )
        assert isinstance(left.env["p"], PointerValue)
        assert left.env["p"].object == "stack.f.x"
        assert left.env["p"] == right.env["vr0_64"]

    def test_mem_constraint_stores_shared_value(self):
        left, right = keq().instantiate(
            point(
                [
                    EqConstraint(
                        Expr.env("v", 32), Expr.mem("spill.f", 8, 32)
                    )
                ],
                memory_objects=[MemoryObject("spill.f", 16)],
            )
        )
        stored = right.memory.load(
            PointerValue("spill.f", t.bv_const(8, 64)), 4
        )
        assert stored is left.env["v"]

    def test_memories_start_shared(self):
        objects = [MemoryObject("g", 4)]
        left, right = keq().instantiate(point([], memory_objects=objects))
        assert simplify(left.memory.equal_term(right.memory)) is t.TRUE

    def test_states_start_at_spec_locations(self):
        left, right = keq().instantiate(point([]))
        assert left.location == Location("f", "L", 0)
        assert right.location == Location("g", "R", 0)
        assert left.path_condition is t.TRUE
