"""Tests for machine-checkable equivalence proofs (the paper's third TV
component: generate a proof, then check it independently)."""

import dataclasses

import pytest

from repro.isel import select_function
from repro.keq import Keq, KeqOptions, Verdict, default_acceptability
from repro.keq.proof import EquivalenceProof, Obligation, ProofChecker
from repro.llvm import parse_module
from repro.llvm.semantics import LlvmSemantics
from repro.smt import t
from repro.vcgen import generate_sync_points
from repro.vx86.semantics import Vx86Semantics

LOOP = """
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %acc2 = add i32 %acc, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %acc
}
"""


def keq_with_proof(source):
    module = parse_module(source)
    function = next(iter(module.functions.values()))
    machine, hints = select_function(module, function)
    points = generate_sync_points(module, function, machine, hints)
    keq = Keq(
        LlvmSemantics(module),
        Vx86Semantics({machine.name: machine}),
        default_acceptability(),
        KeqOptions(record_proof=True),
    )
    report = keq.check_equivalence(points)
    return keq, report


class TestProofGeneration:
    def test_validated_run_produces_proof(self):
        keq, report = keq_with_proof(LOOP)
        assert report.verdict is Verdict.VALIDATED
        proof = keq.last_proof
        assert proof is not None
        assert proof.matched_pairs
        assert proof.obligations

    def test_proof_covers_every_executable_point(self):
        keq, _ = keq_with_proof(LOOP)
        proof = keq.last_proof
        covered = {p.source_point for p in proof.matched_pairs}
        assert set(proof.executable_points) <= covered

    def test_no_proof_without_option(self):
        module = parse_module(LOOP)
        function = module.function("sum")
        machine, hints = select_function(module, function)
        points = generate_sync_points(module, function, machine, hints)
        keq = Keq(LlvmSemantics(module), Vx86Semantics({machine.name: machine}))
        keq.check_equivalence(points)
        assert keq.last_proof is None

    def test_failed_run_produces_no_proof(self):
        module = parse_module(LOOP)
        function = module.function("sum")
        machine, hints = select_function(module, function)
        # Corrupt the machine code.
        for block in machine.blocks.values():
            for index, instruction in enumerate(block.instructions):
                if instruction.opcode == "add":
                    block.instructions[index] = dataclasses.replace(
                        instruction, opcode="sub"
                    )
        points = generate_sync_points(module, function, machine, hints)
        keq = Keq(
            LlvmSemantics(module),
            Vx86Semantics({machine.name: machine}),
            default_acceptability(),
            KeqOptions(record_proof=True),
        )
        report = keq.check_equivalence(points)
        assert report.verdict is Verdict.NOT_VALIDATED
        assert keq.last_proof is None

    def test_proof_renders(self):
        keq, _ = keq_with_proof(LOOP)
        text = keq.last_proof.render()
        assert "equivalence proof" in text
        assert "obligations" in text


class TestProofChecking:
    def test_valid_proof_rechecks(self):
        keq, _ = keq_with_proof(LOOP)
        outcome = ProofChecker().check(keq.last_proof)
        assert outcome.ok, outcome.failures
        assert outcome.obligations_checked == len(keq.last_proof.obligations)

    def test_tampered_obligation_rejected(self):
        keq, _ = keq_with_proof(LOOP)
        proof = keq.last_proof
        x = t.bv_var("tamper", 8)
        bogus = Obligation(
            kind="constraint",
            source_point=proof.executable_points[0],
            target_point="p_exit",
            claim_unsat=t.eq(x, t.bv_const(1, 8)),  # satisfiable!
        )
        proof.obligations.append(bogus)
        outcome = ProofChecker().check(proof)
        assert not outcome.ok
        assert any("failed re-check" in f for f in outcome.failures)

    def test_missing_point_evidence_rejected(self):
        proof = EquivalenceProof(
            left_program="f",
            right_program="f",
            point_names=["p_entry"],
            executable_points=["p_entry"],
        )
        outcome = ProofChecker().check(proof)
        assert not outcome.ok
        assert any("no recorded evidence" in f for f in outcome.failures)

    def test_empty_proof_of_pointless_program_ok(self):
        proof = EquivalenceProof(
            left_program="f", right_program="f", point_names=[], executable_points=[]
        )
        assert ProofChecker().check(proof).ok
