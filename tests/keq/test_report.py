"""Tests for verdicts, failure rendering, and report summaries."""

from repro.keq.report import (
    CheckFailure,
    FailureReason,
    KeqReport,
    KeqStats,
    Verdict,
)


class TestVerdict:
    def test_ok_property(self):
        assert Verdict.VALIDATED.ok
        assert not Verdict.NOT_VALIDATED.ok
        assert not Verdict.TIMEOUT.ok

    def test_values_are_stable_strings(self):
        assert Verdict.VALIDATED.value == "validated"
        assert Verdict.TIMEOUT.value == "timeout"


class TestCheckFailure:
    def test_renders_with_detail(self):
        failure = CheckFailure("p_entry", FailureReason.MEMORY, "byte 3")
        text = str(failure)
        assert "p_entry" in text and "memory" in text and "byte 3" in text

    def test_renders_without_detail(self):
        failure = CheckFailure("p_exit", FailureReason.PATH_CONDITION)
        assert str(failure).endswith("not equivalent")


class TestKeqReport:
    def test_summary_lists_failures(self):
        report = KeqReport(
            Verdict.NOT_VALIDATED,
            [CheckFailure("p0", FailureReason.CONSTRAINT, "a = b")],
            KeqStats(points_checked=2, pairs_matched=1),
        )
        summary = report.summary()
        assert "not-validated" in summary
        assert "a = b" in summary
        assert "points=2" in summary

    def test_ok_shortcut(self):
        assert KeqReport(Verdict.VALIDATED).ok
        assert not KeqReport(Verdict.TIMEOUT).ok
