"""Tests for KEQ proper (the symbolic Algorithm 1) on the LLVM/x86 pair."""

import pytest

from repro.isel import BugMode, IselOptions, select_function
from repro.keq import (
    EqConstraint,
    Expr,
    Keq,
    KeqOptions,
    StateSpec,
    SyncPoint,
    Verdict,
    default_acceptability,
)
from repro.keq.acceptability import strict_acceptability
from repro.llvm import parse_module
from repro.llvm.semantics import LlvmSemantics
from repro.semantics.state import Location
from repro.vcgen import generate_sync_points
from repro.vx86 import parse_machine_function
from repro.vx86.semantics import Vx86Semantics

ARITH_SEQ_SUM = """
define i32 @arithm_seq_sum(i32 %a0, i32 %d, i32 %n) {
entry:
  br label %for.cond
for.cond:
  %s.0 = phi i32 [ %a0, %entry ], [ %add1, %for.inc ]
  %a.0 = phi i32 [ %a0, %entry ], [ %add, %for.inc ]
  %i.0 = phi i32 [ 1, %entry ], [ %inc, %for.inc ]
  %cmp = icmp ult i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end
for.body:
  %add = add i32 %a.0, %d
  %add1 = add i32 %s.0, %add
  br label %for.inc
for.inc:
  %inc = add i32 %i.0, 1
  br label %for.cond
for.end:
  ret i32 %s.0
}
"""


def keq_for(module, machine, **options):
    return Keq(
        LlvmSemantics(module),
        Vx86Semantics({machine.name: machine}),
        default_acceptability(),
        KeqOptions(**options) if options else None,
    )


def validate_source(source, name=None, isel_options=None, **keq_options):
    module = parse_module(source)
    function = (
        module.function(name) if name else next(iter(module.functions.values()))
    )
    machine, hints = select_function(module, function, isel_options)
    points = generate_sync_points(module, function, machine, hints)
    keq = keq_for(module, machine, **keq_options)
    return keq.check_equivalence(points)


class TestRunningExample:
    def test_paper_figure_2_validates(self):
        report = validate_source(ARITH_SEQ_SUM)
        assert report.verdict is Verdict.VALIDATED

    def test_statistics_populated(self):
        report = validate_source(ARITH_SEQ_SUM)
        assert report.stats.points_checked == 3  # entry + 2 loop-edge points
        assert report.stats.pairs_matched >= 3
        assert report.stats.solver_queries > 0

    def test_simulation_mode_also_validates(self):
        report = validate_source(ARITH_SEQ_SUM, mode="simulation")
        assert report.verdict is Verdict.VALIDATED

    def test_negative_form_also_validates(self):
        report = validate_source(ARITH_SEQ_SUM, use_positive_form=False)
        assert report.verdict is Verdict.VALIDATED


class TestTamperedTranslations:
    """Hand-corrupted machine code must be refuted."""

    def lower(self):
        module = parse_module(ARITH_SEQ_SUM)
        function = module.function("arithm_seq_sum")
        machine, hints = select_function(module, function)
        points = generate_sync_points(module, function, machine, hints)
        return module, machine, points

    def test_wrong_opcode_refuted(self):
        module, machine, points = self.lower()
        for block in machine.blocks.values():
            for index, instruction in enumerate(block.instructions):
                if instruction.opcode == "add":
                    block.instructions[index] = type(instruction)(
                        "sub", instruction.operands, instruction.result
                    )
                    break
        report = keq_for(module, machine).check_equivalence(points)
        assert report.verdict is Verdict.NOT_VALIDATED

    def test_wrong_branch_condition_refuted(self):
        module, machine, points = self.lower()
        for block in machine.blocks.values():
            for index, instruction in enumerate(block.instructions):
                if instruction.opcode == "jb":
                    block.instructions[index] = type(instruction)(
                        "jae", instruction.operands, instruction.result
                    )
        report = keq_for(module, machine).check_equivalence(points)
        assert report.verdict is Verdict.NOT_VALIDATED

    def test_wrong_constant_refuted(self):
        module, machine, points = self.lower()
        from repro.vx86.insns import Imm, MInstr

        for block in machine.blocks.values():
            for index, instruction in enumerate(block.instructions):
                if instruction.opcode == "mov":
                    block.instructions[index] = MInstr(
                        "mov", (Imm(2, 32),), instruction.result
                    )
        report = keq_for(module, machine).check_equivalence(points)
        assert report.verdict is Verdict.NOT_VALIDATED

    def test_missing_loop_point_refuted(self):
        """Dropping a loop point breaks the cut: KEQ must not validate
        (the paper: exit/loophead coverage need not be trusted)."""
        module, machine, points = self.lower()
        pruned = [p for p in points if p.kind != "loop"]
        report = keq_for(module, machine).check_equivalence(pruned)
        assert report.verdict in (Verdict.NOT_VALIDATED, Verdict.TIMEOUT)


class TestPaperBugs:
    WAW = """
@b = external global [8 x i8]
define void @foo() {
entry:
  store i16 0, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 2) to i16*)
  store i16 2, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 3) to i16*)
  store i16 1, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 0) to i16*)
  ret void
}
"""
    I96 = """
@a = external global i96, align 4
@b = external global i64, align 8
define void @foo() {
entry:
  %srcval = load i96, i96* @a, align 4
  %tmp96 = lshr i96 %srcval, 64
  %tmp64 = trunc i96 %tmp96 to i64
  store i64 %tmp64, i64* @b, align 8
  ret void
}
"""

    def test_waw_plain_validates(self):
        assert validate_source(self.WAW).verdict is Verdict.VALIDATED

    def test_waw_correct_merge_validates(self):
        report = validate_source(
            self.WAW, isel_options=IselOptions(merge_stores=True)
        )
        assert report.verdict is Verdict.VALIDATED

    def test_waw_bug_refuted_via_memory_mismatch(self):
        report = validate_source(
            self.WAW, isel_options=IselOptions(bug=BugMode.WAW_STORE_MERGE)
        )
        assert report.verdict is Verdict.NOT_VALIDATED
        from repro.keq import FailureReason

        assert any(
            f.reason is FailureReason.MEMORY for f in report.failures
        )

    def test_narrowing_correct_validates(self):
        report = validate_source(
            self.I96, isel_options=IselOptions(narrow_loads=True)
        )
        assert report.verdict is Verdict.VALIDATED

    def test_narrowing_bug_refuted_via_unmatched_error(self):
        report = validate_source(
            self.I96, isel_options=IselOptions(bug=BugMode.LOAD_NARROWING)
        )
        assert report.verdict is Verdict.NOT_VALIDATED
        # The x86 side branches into an out-of-bounds error state that no
        # LLVM state matches (paper Section 5.2: not even refinement).
        assert any("out_of_bounds" in f.detail for f in report.failures)


class TestUndefinedBehaviourPolicy:
    DIV = """
define i32 @f(i32 %x, i32 %y) {
entry:
  %q = udiv i32 %x, %y
  ret i32 %q
}
"""

    def test_matching_error_states_validate(self):
        assert validate_source(self.DIV).verdict is Verdict.VALIDATED

    def test_strict_acceptability_requires_exact_match(self):
        """With the default policy the LLVM error licenses anything; the
        x86 division errors the same way, so even strict mode passes."""
        module = parse_module(self.DIV)
        function = module.function("f")
        machine, hints = select_function(module, function)
        points = generate_sync_points(module, function, machine, hints)
        keq = Keq(
            LlvmSemantics(module),
            Vx86Semantics({machine.name: machine}),
            strict_acceptability(),
        )
        assert keq.check_equivalence(points).verdict is Verdict.VALIDATED


class TestBudgets:
    def test_step_budget_produces_timeout(self):
        report = validate_source(ARITH_SEQ_SUM, max_steps=3)
        assert report.verdict is Verdict.TIMEOUT

    def test_generous_budget_validates(self):
        report = validate_source(ARITH_SEQ_SUM, max_steps=100000)
        assert report.verdict is Verdict.VALIDATED

    def test_wall_budget_produces_timeout(self):
        """The paper's actual limit was wall-clock (3 h per function)."""
        report = validate_source(ARITH_SEQ_SUM, wall_budget_seconds=1e-9)
        assert report.verdict is Verdict.TIMEOUT

    def test_pair_budget_produces_timeout(self):
        report = validate_source(ARITH_SEQ_SUM, max_pair_checks=0)
        assert report.verdict is Verdict.TIMEOUT
