"""Tests for the cut-bisimulation theory layer (paper Sections 2, 7, 8).

Includes the Figure 4 example: the partial-redundancy-elimination pair that
is not strongly bisimilar but is cut-bisimilar with just the
synchronization relation as witness.
"""

from hypothesis import given, settings, strategies as st

from repro.keq.concrete import (
    check_cut_bisimulation,
    check_cut_simulation,
    equivalent,
)
from repro.keq.theory import (
    cut_abstract_system,
    is_bisimulation,
    is_cut,
    largest_cut_bisimulation,
)
from repro.keq.transition import CutTransitionSystem, complete_traces


def figure4_left() -> CutTransitionSystem:
    """P: x=1; if(*) {y=x+1} else {y=2}  — cuts at P0, P2, P3."""
    return CutTransitionSystem.build(
        initial="P0",
        edges=[("P0", "P1"), ("P1", "P2"), ("P1", "P3")],
        cuts=["P0", "P2", "P3"],
    )


def figure4_right() -> CutTransitionSystem:
    """Q: t=2; if(*) {x=1; y=t} else {y=t} — cuts at Q0, Q2, Q3."""
    return CutTransitionSystem.build(
        initial="Q0",
        edges=[("Q0", "Q1"), ("Q0", "Q3"), ("Q1", "Q2"), ("Q3", "Q2")],
        cuts=["Q0", "Q2"],
    )


FIGURE4_RELATION = [("P0", "Q0"), ("P2", "Q2"), ("P3", "Q2")]


class TestCuts:
    def test_figure4_cuts_are_cuts(self):
        assert is_cut(figure4_left())
        assert is_cut(figure4_right())

    def test_initial_outside_cut_rejected(self):
        system = CutTransitionSystem.build("a", [("a", "b")], cuts=["b"])
        assert not is_cut(system)

    def test_terminating_outside_cut_rejected(self):
        system = CutTransitionSystem.build(
            "a", [("a", "b"), ("b", "c")], cuts=["a", "b"]
        )
        assert not is_cut(system)  # c is final but not a cut state

    def test_noncut_cycle_rejected(self):
        # a -> b -> c -> b : the b/c cycle avoids the cut forever.
        system = CutTransitionSystem.build(
            "a", [("a", "b"), ("b", "c"), ("c", "b")], cuts=["a"]
        )
        assert not is_cut(system)

    def test_cycle_through_cut_accepted(self):
        system = CutTransitionSystem.build(
            "a", [("a", "b"), ("b", "a")], cuts=["a"]
        )
        assert is_cut(system)

    def test_cut_successors_skip_noncut_states(self):
        system = figure4_left()
        assert system.cut_successors("P0") == frozenset({"P2", "P3"})

    def test_cut_successors_of_final_state_empty(self):
        system = figure4_left()
        assert system.cut_successors("P2") == frozenset()

    def test_complete_traces_hit_cut(self):
        """Definition 7.1, checked on all complete traces of Figure 4."""
        system = figure4_left()
        for trace in complete_traces(system, system.initial, max_length=10):
            assert any(
                trace[k] in system.cuts for k in range(1, trace.size)
            )


class TestAlgorithm1Concrete:
    def test_figure4_relation_is_cut_bisimulation(self):
        assert check_cut_bisimulation(
            figure4_left(), figure4_right(), FIGURE4_RELATION
        )

    def test_figure4_equivalent(self):
        assert equivalent(figure4_left(), figure4_right(), FIGURE4_RELATION)

    def test_incomplete_relation_rejected(self):
        # Dropping (P3, Q2) leaves P3 unmatched.
        assert not check_cut_bisimulation(
            figure4_left(), figure4_right(), [("P0", "Q0"), ("P2", "Q2")]
        )

    def test_simulation_weaker_than_bisimulation(self):
        # Left system with fewer behaviours refines the right one.
        left = CutTransitionSystem.build(
            "a0", [("a0", "a1")], cuts=["a0", "a1"]
        )
        right = CutTransitionSystem.build(
            "b0", [("b0", "b1"), ("b0", "b2")], cuts=["b0", "b1", "b2"]
        )
        relation = [("a0", "b0"), ("a1", "b1")]
        assert check_cut_simulation(left, right, relation)
        assert not check_cut_bisimulation(left, right, relation)

    def test_relation_with_noncut_state_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            check_cut_bisimulation(
                figure4_left(), figure4_right(), [("P1", "Q0")]
            )

    def test_empty_relation_is_trivially_bisimulation(self):
        assert check_cut_bisimulation(figure4_left(), figure4_right(), [])


class TestCutAbstraction:
    def test_lemma_7_6_on_figure4(self):
        """A cut-bisimulation is a strong bisimulation on the abstraction."""
        left_abs = cut_abstract_system(figure4_left())
        right_abs = cut_abstract_system(figure4_right())
        assert is_bisimulation(left_abs, right_abs, FIGURE4_RELATION)

    def test_abstraction_states_are_cuts(self):
        abstraction = cut_abstract_system(figure4_left())
        assert abstraction.states == figure4_left().cuts

    def test_largest_cut_bisimulation_contains_witness(self):
        largest = largest_cut_bisimulation(figure4_left(), figure4_right())
        assert set(FIGURE4_RELATION) <= largest


# ---------------------------------------------------------------------------
# Property-based validation of Algorithm 1 (Theorem 8.1 / Lemma 7.6)
# ---------------------------------------------------------------------------


@st.composite
def random_cut_system(draw, prefix: str):
    n_states = draw(st.integers(2, 6))
    states = [f"{prefix}{i}" for i in range(n_states)]
    edges = []
    for source in states:
        out_degree = draw(st.integers(0, 2))
        for _ in range(out_degree):
            edges.append((source, draw(st.sampled_from(states))))
    # To guarantee the cut property cheaply: make EVERY state a cut state.
    return CutTransitionSystem.build(states[0], edges, cuts=states, extra_states=states)


@st.composite
def system_pair_with_relation(draw):
    left = draw(random_cut_system("a"))
    right = draw(random_cut_system("b"))
    pairs = [
        (a, b)
        for a in sorted(left.cuts)
        for b in sorted(right.cuts)
        if draw(st.booleans())
    ]
    return left, right, pairs


class TestCutSuccessorProperties:
    """Definition 7.3: s' is a cut-successor of s iff some finite trace
    s s1 ... sn s' exists with all intermediate states outside the cut."""

    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_cut_successors_match_trace_semantics(self, data):
        system = data.draw(random_cut_system("s"))
        # Use a sparser cut to make intermediate states possible.
        states = sorted(system.states)
        cuts = frozenset(
            s for i, s in enumerate(states) if i % 2 == 0
        ) | {system.initial}
        sparse = CutTransitionSystem(
            system.states, system.initial, system.transitions, frozenset(cuts)
        )
        for start in sorted(cuts):
            computed = sparse.cut_successors(start)
            # Reference: enumerate bounded traces and keep the first cut
            # state hit after step 0 (Definition 7.3 verbatim).
            reference = set()
            stack = [[start]]
            while stack:
                path = stack.pop()
                for successor in sorted(sparse.next_states(path[-1])):
                    if successor in cuts:
                        reference.add(successor)
                    elif successor not in path and len(path) < 8:
                        stack.append(path + [successor])
            assert computed == frozenset(reference)


class TestAlgorithm1Properties:
    @given(data=system_pair_with_relation())
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_strong_bisimulation_when_all_states_cut(self, data):
        """With C = S, cut-bisimulation IS strong bisimulation (Section 7),
        so Algorithm 1 must agree with the brute-force checker."""
        left, right, pairs = data
        algorithm = check_cut_bisimulation(left, right, pairs)
        brute_force = is_bisimulation(
            cut_abstract_system(left), cut_abstract_system(right), pairs
        )
        assert algorithm == brute_force

    @given(data=system_pair_with_relation())
    @settings(max_examples=200, deadline=None)
    def test_bisimulation_implies_both_simulations(self, data):
        left, right, pairs = data
        if check_cut_bisimulation(left, right, pairs):
            assert check_cut_simulation(left, right, pairs)

    @given(data=system_pair_with_relation())
    @settings(max_examples=100, deadline=None)
    def test_largest_bisimulation_passes_algorithm(self, data):
        left, right, _ = data
        largest = largest_cut_bisimulation(left, right)
        assert check_cut_bisimulation(left, right, largest)
