"""Printer/parser roundtrip for Virtual x86 machine functions."""

from hypothesis import given, settings, strategies as st

from repro.isel import select_function
from repro.vx86 import parse_machine_function
from repro.workloads import FunctionShape, generate_module


def roundtrip(function) -> None:
    text = str(function)
    reparsed = parse_machine_function(text)
    assert str(reparsed) == text
    assert list(reparsed.blocks) == list(function.blocks)
    assert reparsed.frame_objects == function.frame_objects


class TestRoundtrip:
    def test_simple_function(self):
        function = parse_machine_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  eax = COPY %vr0_32\n  ret\n"
        )
        roundtrip(function)

    def test_memory_widths_preserved(self):
        function = parse_machine_function(
            "f:\nframe stack.f.x, 4\n.LBB0:\n"
            "  store16 [stack.f.x + 2], 7\n"
            "  %vr0_8 = load8 [stack.f.x]\n  ret\n"
        )
        roundtrip(function)
        stored = function.entry_block.instructions[0]
        assert stored.operands[0].width_bytes == 2

    @given(seed=st.integers(0, 3000))
    @settings(max_examples=25, deadline=None)
    def test_isel_output_roundtrips(self, seed):
        module = generate_module(
            [
                (
                    "f",
                    FunctionShape(loops=1, diamonds=1, memory_ops=1, allocas=1),
                    seed,
                )
            ]
        )
        machine, _ = select_function(module, module.functions["f"])
        roundtrip(machine)
