"""Tests for the Virtual x86 parser and symbolic semantics."""

import pytest

from repro.memory import Memory, MemoryObject, PointerValue
from repro.semantics.state import ErrorInfo, StatusKind
from repro.smt import Solver, simplify, t
from repro.vx86 import (
    MachineFunction,
    Vx86Semantics,
    machine_entry_state,
    parse_machine_function,
)
from repro.vx86.parser import MachineParseError


def run_to_halt(semantics, state, limit=300):
    frontier = [state]
    halted = []
    for _ in range(limit):
        advanced = []
        for current in frontier:
            successors = semantics.step(current)
            if successors:
                advanced.extend(successors)
            else:
                halted.append(current)
        if not advanced:
            return halted
        frontier = advanced
    raise AssertionError("did not halt")


def run_function(source, registers=None, objects=()):
    function = parse_machine_function(source)
    semantics = Vx86Semantics({function.name: function})
    memory = Memory.create([MemoryObject(n, s) for n, s in objects])
    state = machine_entry_state(function, memory, registers or {})
    return run_to_halt(semantics, state)


class TestParser:
    def test_blocks_and_labels(self):
        function = parse_machine_function(
            "f:\n.LBB0:\n  jmp .LBB1\n.LBB1:\n  ret\n"
        )
        assert list(function.blocks) == [".LBB0", ".LBB1"]

    def test_vreg_and_physical_operands(self):
        function = parse_machine_function("f:\n.LBB0:\n  %vr0_32 = COPY edi\n  ret\n")
        instruction = function.entry_block.instructions[0]
        assert instruction.result.id == 0 and instruction.result.width == 32
        assert instruction.operands[0].name == "rdi"
        assert instruction.operands[0].width == 32

    def test_imm_width_inferred_from_result(self):
        function = parse_machine_function("f:\n.LBB0:\n  %vr0_16 = mov 7\n  ret\n")
        assert function.entry_block.instructions[0].operands[0].width == 16

    def test_memref_with_object_and_disp(self):
        function = parse_machine_function(
            "f:\n.LBB0:\n  %vr0_32 = load [g + 4]\n  ret\n"
        )
        mem = function.entry_block.instructions[0].operands[0]
        assert mem.object == "g" and mem.disp == 4 and mem.width_bytes == 4

    def test_store_width_from_suffix(self):
        function = parse_machine_function("f:\n.LBB0:\n  store16 [g + 3], 2\n  ret\n")
        mem = function.entry_block.instructions[0].operands[0]
        assert mem.width_bytes == 2
        assert function.entry_block.instructions[0].operands[1].width == 16

    def test_frame_declaration(self):
        function = parse_machine_function(
            "f:\nframe stack.f.x, 4\n.LBB0:\n  ret\n"
        )
        assert function.frame_objects == {"stack.f.x": 4}

    def test_phi_operands(self):
        function = parse_machine_function(
            "f:\n.LBB0:\n  jmp .LBB1\n.LBB1:\n"
            "  %vr0_32 = PHI %vr1_32, .LBB0, %vr2_32, .LBB1\n  jmp .LBB1\n"
        )
        phi = function.block(".LBB1").instructions[0]
        assert phi.opcode == "PHI" and len(phi.operands) == 4

    def test_store_of_ambiguous_width_rejected(self):
        with pytest.raises(MachineParseError):
            parse_machine_function("f:\n.LBB0:\n  store [g], 2\n  ret\n")


class TestRegisterSemantics:
    def test_32bit_write_zeroes_upper(self):
        halted = run_function(
            "f:\n.LBB0:\n  eax = COPY edi\n  ret\n",
            registers={"rdi": t.bv_const(0xFFFFFFFF_FFFFFFFF, 64)},
        )
        assert halted[0].returned.value == 0x00000000_FFFFFFFF

    def test_16bit_write_preserves_upper(self):
        halted = run_function(
            "f:\n.LBB0:\n  ax = COPY di\n  ret\n",
            registers={
                "rdi": t.bv_const(0x1234, 64),
                "rax": t.bv_const(0xAAAA_BBBB_CCCC_0000, 64),
            },
        )
        assert halted[0].returned.value == 0xAAAA_BBBB_CCCC_1234

    def test_unwritten_register_reads_named_unknown(self):
        halted = run_function("f:\n.LBB0:\n  %vr0_64 = COPY rsi\n  ret\n")
        # rsi was never initialized; its value is the deterministic symbol.
        assert halted[0].env["vr0_64"] is t.bv_var("reg_rsi", 64)


class TestAluAndFlags:
    def test_add(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  %vr1_32 = add %vr0_32, 5\n"
            "  eax = COPY %vr1_32\n  ret\n",
            registers={"rdi": t.bv_const(10, 64)},
        )
        assert halted[0].returned.value == 15

    def test_cmp_jb_unsigned(self):
        source = (
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  cmp %vr0_32, 10\n"
            "  jb .LBB1\n  jmp .LBB2\n"
            ".LBB1:\n  eax = mov 1\n  ret\n"
            ".LBB2:\n  eax = mov 0\n  ret\n"
        )
        less = run_function(source, registers={"rdi": t.bv_const(5, 64)})
        geq = run_function(source, registers={"rdi": t.bv_const(15, 64)})
        assert less[0].returned.value == 1
        assert geq[0].returned.value == 0

    def test_cmp_jl_signed(self):
        source = (
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  cmp %vr0_32, 0\n"
            "  jl .LBB1\n  jmp .LBB2\n"
            ".LBB1:\n  eax = mov 1\n  ret\n"
            ".LBB2:\n  eax = mov 0\n  ret\n"
        )
        negative = run_function(
            source, registers={"rdi": t.bv_const(0xFFFFFFFF, 64)}
        )
        positive = run_function(source, registers={"rdi": t.bv_const(7, 64)})
        assert negative[0].returned.value == 1
        assert positive[0].returned.value == 0

    def test_symbolic_cmp_condition_matches_ult(self):
        source = (
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  %vr1_32 = COPY esi\n"
            "  cmp %vr0_32, %vr1_32\n  jb .LBB1\n  jmp .LBB2\n"
            ".LBB1:\n  ret\n.LBB2:\n  ret\n"
        )
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        halted = run_function(
            source, registers={"rdi": t.zext(a, 64), "rsi": t.zext(b, 64)}
        )
        taken = next(
            s for s in halted if s.path_condition is not t.not_(t.ult(a, b))
        )
        assert taken.path_condition is t.ult(a, b)

    def test_setcc_materializes_condition(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  cmp %vr0_32, 10\n"
            "  %vr1_8 = setb\n  movzx eax, %vr1_8\n  ret\n".replace(
                "movzx eax, %vr1_8", "eax = movzx %vr1_8"
            ),
            registers={"rdi": t.bv_const(3, 64)},
        )
        assert halted[0].returned.value == 1

    def test_inc_preserves_carry_flag(self):
        # cmp sets CF; inc must not clobber it.
        source = (
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  cmp %vr0_32, 10\n"
            "  %vr1_32 = inc %vr0_32\n  jb .LBB1\n  jmp .LBB2\n"
            ".LBB1:\n  eax = mov 1\n  ret\n.LBB2:\n  eax = mov 0\n  ret\n"
        )
        halted = run_function(source, registers={"rdi": t.bv_const(3, 64)})
        assert halted[0].returned.value == 1

    def test_division_error_states(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  %vr1_32 = COPY esi\n"
            "  %vr2_32 = idiv %vr0_32, %vr1_32\n  eax = COPY %vr2_32\n  ret\n"
        )
        kinds = {s.error.kind for s in halted if s.status is StatusKind.ERROR}
        assert kinds == {ErrorInfo.DIV_BY_ZERO, ErrorInfo.SIGNED_OVERFLOW}

    def test_shift_masks_count(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = COPY edi\n  %vr1_32 = shl %vr0_32, 33\n"
            "  eax = COPY %vr1_32\n  ret\n",
            registers={"rdi": t.bv_const(1, 64)},
        )
        # x86 masks the count to 5 bits: 33 & 31 == 1.
        assert halted[0].returned.value == 2


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        halted = run_function(
            "f:\n.LBB0:\n  store32 [g], 77\n  %vr0_32 = load [g]\n"
            "  eax = COPY %vr0_32\n  ret\n",
            objects=[("g", 8)],
        )
        assert halted[0].returned.value == 77

    def test_lea_then_indirect_store(self):
        halted = run_function(
            "f:\nframe stack.f.x, 4\n.LBB0:\n  %vr0_64 = lea [stack.f.x]\n"
            "  store32 [%vr0_64], 5\n  %vr1_32 = load [stack.f.x]\n"
            "  eax = COPY %vr1_32\n  ret\n"
        )
        assert halted[0].returned.value == 5

    def test_oob_load_errors(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_64 = load [g + 8]\n  ret\n",
            objects=[("g", 12)],
        )
        assert len(halted) == 1
        assert halted[0].status is StatusKind.ERROR
        assert halted[0].error.kind == ErrorInfo.OUT_OF_BOUNDS

    def test_narrow_load_in_bounds(self):
        halted = run_function(
            "f:\n.LBB0:\n  %vr0_32 = load [g + 8]\n  eax = COPY %vr0_32\n  ret\n",
            objects=[("g", 12)],
        )
        assert halted[0].status is StatusKind.EXITED


class TestPhisAndCalls:
    def test_phi_by_predecessor(self):
        source = (
            "f:\n.LBB0:\n  %vr0_32 = mov 1\n  jmp .LBB2\n"
            ".LBB1:\n  %vr1_32 = mov 2\n  jmp .LBB2\n"
            ".LBB2:\n  %vr2_32 = PHI %vr0_32, .LBB0, %vr1_32, .LBB1\n"
            "  eax = COPY %vr2_32\n  ret\n"
        )
        halted = run_function(source)
        assert halted[0].returned.value == 1

    def test_call_pauses_with_arguments(self):
        halted = run_function(
            "f:\n.LBB0:\n  edi = mov 7\n  call @g, edi\n"
            "  eax = mov 0\n  ret\n"
        )
        state = halted[0]
        assert state.status is StatusKind.CALLING
        assert state.call.callee == "g"
        assert simplify(t.trunc(state.call.arguments[0], 32)).value == 7

    def test_ret_returns_rax(self):
        halted = run_function(
            "f:\n.LBB0:\n  eax = mov 9\n  ret\n"
        )
        assert halted[0].returned.value == 9
