"""Tests for the synthetic workload generator and corpus descriptor."""

from hypothesis import given, settings, strategies as st

from repro.llvm import ir
from repro.llvm.semantics import LlvmSemantics, entry_state
from repro.llvm.verify import verify_function, verify_module
from repro.semantics.state import StatusKind
from repro.smt import t
from repro.workloads import (
    FunctionShape,
    gcc_like_corpus,
    generate_function,
    generate_module,
)
from repro.workloads.corpus import (
    PAPER_OOM,
    PAPER_SUPPORTED,
    PAPER_TIMEOUT,
    PAPER_TOTAL,
)


class TestGenerator:
    def test_deterministic_per_seed(self):
        first = generate_module([("f", FunctionShape(), 42)])
        second = generate_module([("f", FunctionShape(), 42)])
        assert str(first) == str(second)

    def test_different_seeds_differ(self):
        first = generate_module([("f", FunctionShape(), 1)])
        second = generate_module([("f", FunctionShape(), 2)])
        assert str(first) != str(second)

    def test_generated_functions_verify(self):
        module = generate_module(
            [
                ("a", FunctionShape(loops=2, diamonds=2, calls=1), 3),
                ("b", FunctionShape(memory_ops=2, allocas=1), 4),
            ]
        )
        verify_module(module)

    def test_loop_shape_produces_phis(self):
        module = generate_module([("f", FunctionShape(loops=1), 5)])
        function = module.functions["f"]
        assert any(
            isinstance(instruction, ir.Phi)
            for _, _, instruction in function.instructions()
        )

    def test_call_shape_produces_calls(self):
        module = generate_module(
            [("f", FunctionShape(calls=2, loops=0, diamonds=0), 6)]
        )
        function = module.functions["f"]
        assert any(
            isinstance(instruction, ir.Call)
            for _, _, instruction in function.instructions()
        )

    def test_nested_loops_generate_depth_two_nests(self):
        from repro.analysis import LlvmGraph, natural_loops

        module = generate_module(
            [("f", FunctionShape(loops=1, nested_loops=True, diamonds=0), 3)]
        )
        loops = natural_loops(LlvmGraph(module.functions["f"]))
        assert len(loops) == 2
        bodies = sorted(loops, key=lambda l: len(l.body))
        assert bodies[0].body < bodies[1].body  # properly nested

    def test_nested_loop_functions_validate(self):
        from repro.tv import validate_function

        module = generate_module(
            [("f", FunctionShape(loops=1, nested_loops=True, diamonds=0), 11)]
        )
        assert validate_function(module, "f").ok

    def test_live_tail_keeps_values_alive(self):
        plain = generate_module(
            [("f", FunctionShape(loops=0, diamonds=0, ops_per_segment=8), 7)]
        )
        tailed = generate_module(
            [
                (
                    "f",
                    FunctionShape(
                        loops=0, diamonds=0, ops_per_segment=8, live_tail=True
                    ),
                    7,
                )
            ]
        )
        plain_size = sum(1 for _ in plain.functions["f"].instructions())
        tailed_size = sum(1 for _ in tailed.functions["f"].instructions())
        assert tailed_size > plain_size

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_seeds_always_wellformed(self, seed):
        module = generate_module(
            [("f", FunctionShape(loops=1, diamonds=1, memory_ops=1), seed)]
        )
        verify_function(module.functions["f"])

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_generated_functions_execute_concretely(self, seed):
        """Symbolic execution with concrete arguments must terminate in a
        non-error state (generated programs avoid UB by construction)."""
        module = generate_module([("f", FunctionShape(loops=1, diamonds=1), seed)])
        function = module.functions["f"]
        semantics = LlvmSemantics(module)
        arguments = {
            name: t.bv_const(3 + index, 32)
            for index, (name, _) in enumerate(function.parameters)
        }
        state = entry_state(module, function, arguments=arguments)
        frontier = [state]
        for _ in range(3000):
            advanced = []
            for current in frontier:
                successors = semantics.step(current)
                if successors:
                    advanced.extend(successors)
                elif current.status is StatusKind.CALLING:
                    # Treat external calls as returning a constant.
                    resumed = current.bind(
                        current.call.result_name, t.bv_const(1, 32)
                    )
                    import dataclasses

                    resumed = dataclasses.replace(
                        resumed,
                        status=StatusKind.RUNNING,
                        call=None,
                        location=current.call.return_location,
                    )
                    advanced.append(resumed)
                else:
                    assert current.status is StatusKind.EXITED
                    return
            frontier = advanced
        raise AssertionError("did not terminate")


class TestCorpus:
    def test_scale_controls_supported_count(self):
        corpus = gcc_like_corpus(scale=24, seed=1)
        supported = [s for s in corpus.functions if s.expect != "unsupported"]
        assert len(supported) == 24

    def test_proportions_track_figure6(self):
        corpus = gcc_like_corpus(scale=120, seed=1)
        counts = {}
        for spec in corpus.functions:
            counts[spec.expect] = counts.get(spec.expect, 0) + 1
        assert counts["timeout"] == round(120 * PAPER_TIMEOUT / PAPER_SUPPORTED)
        assert counts["oom"] == round(120 * PAPER_OOM / PAPER_SUPPORTED)
        assert counts["unsupported"] == round(
            120 * (PAPER_TOTAL - PAPER_SUPPORTED) / PAPER_SUPPORTED
        )

    def test_imprecise_flag_only_on_other(self):
        corpus = gcc_like_corpus(scale=60, seed=1)
        for spec in corpus.functions:
            assert spec.imprecise_liveness == (spec.expect == "other")

    def test_corpus_module_builds_and_verifies(self):
        corpus = gcc_like_corpus(scale=12, seed=5)
        module = corpus.build_module()
        verify_module(module)
        assert len(module.functions) == len(corpus.functions)
