"""Tests for the shared program-state shape and the Semantics protocol."""

import pytest

from repro.llvm.semantics import LlvmSemantics
from repro.memory import Memory, PointerValue
from repro.semantics import Semantics
from repro.semantics.state import (
    CallMarker,
    ErrorInfo,
    Location,
    ProgramState,
    StatusKind,
    value_term,
)
from repro.smt import t
from repro.vx86.semantics import Vx86Semantics


def fresh_state() -> ProgramState:
    return ProgramState(
        location=Location("f", "entry", 0),
        env={"x": t.bv_var("x", 32)},
        memory=Memory.create([]),
    )


class TestProgramState:
    def test_bind_is_persistent(self):
        state = fresh_state()
        bound = state.bind("y", t.bv_const(1, 32))
        assert "y" in bound.env
        assert "y" not in state.env

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            fresh_state().lookup("nope")

    def test_assuming_accumulates_conjunction(self):
        state = fresh_state()
        p = t.bool_var("p")
        q = t.bool_var("q")
        state = state.assuming(p).assuming(q)
        assert state.path_condition is t.and_(p, q)

    def test_assuming_false_is_syntactically_infeasible(self):
        state = fresh_state().assuming(t.FALSE)
        assert not state.is_feasible_syntactically

    def test_advanced_increments_index_and_steps(self):
        state = fresh_state()
        advanced = state.advanced()
        assert advanced.location.index == 1
        assert advanced.steps == state.steps + 1

    def test_at_records_previous_block(self):
        state = fresh_state()
        moved = state.at(Location("f", "next", 0), prev_block="entry")
        assert moved.prev_block == "entry"

    def test_exited_state_is_halted(self):
        state = fresh_state().exited(t.bv_const(1, 32))
        assert state.status is StatusKind.EXITED
        assert not state.is_running

    def test_errored_state_carries_kind(self):
        state = fresh_state().errored(ErrorInfo.OUT_OF_BOUNDS, "load")
        assert state.error.kind == ErrorInfo.OUT_OF_BOUNDS
        assert "out_of_bounds" in state.describe()

    def test_calling_state_carries_marker(self):
        marker = CallMarker(
            callee="g",
            arguments=(t.bv_const(1, 32),),
            result_name="r",
            return_location=Location("f", "entry", 1),
        )
        state = fresh_state().calling(marker)
        assert state.status is StatusKind.CALLING
        assert state.call.callee == "g"

    def test_value_term_materializes_pointers(self):
        pointer = PointerValue("g", t.bv_const(4, 64))
        term = value_term(pointer)
        assert term.width == 64

    def test_describe_variants(self):
        assert "at" in fresh_state().describe()
        assert "exited" in fresh_state().exited(None).describe()


class TestSemanticsProtocol:
    def test_llvm_semantics_satisfies_protocol(self):
        from repro.llvm import ir

        assert isinstance(LlvmSemantics(ir.Module()), Semantics)

    def test_vx86_semantics_satisfies_protocol(self):
        assert isinstance(Vx86Semantics({}), Semantics)

    def test_imp_semantics_satisfies_protocol(self):
        from repro.imp import ImpSemantics, StackSemantics

        assert isinstance(ImpSemantics({}), Semantics)
        assert isinstance(StackSemantics({}), Semantics)

    def test_halted_states_have_no_successors(self):
        from repro.llvm import ir

        semantics = LlvmSemantics(ir.Module())
        assert semantics.step(fresh_state().exited(None)) == []
        assert semantics.step(fresh_state().errored("x")) == []
