"""Tests for the concrete/symbolic execution drivers."""

import pytest

from repro.llvm import LlvmSemantics, entry_state, parse_module
from repro.semantics.run import ExecutionError, run_concrete, run_symbolic
from repro.semantics.state import StatusKind
from repro.smt import t

BRANCHY = """
define i32 @f(i32 %x) {
entry:
  %c = icmp eq i32 %x, 0
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
"""


def setup(source):
    module = parse_module(source)
    function = next(iter(module.functions.values()))
    return module, function, LlvmSemantics(module)


class TestRunConcrete:
    def test_concrete_execution(self):
        module, function, semantics = setup(BRANCHY)
        state = entry_state(module, function, arguments={"x": t.bv_const(0, 32)})
        final = run_concrete(semantics, state)
        assert final.returned.value == 1

    def test_symbolic_branch_raises(self):
        module, function, semantics = setup(BRANCHY)
        state = entry_state(module, function)  # symbolic argument
        with pytest.raises(ExecutionError):
            run_concrete(semantics, state)

    def test_step_limit_raises(self):
        module, function, semantics = setup(
            "define i32 @f() {\nentry:\n  br label %entry2\n"
            "entry2:\n  br label %entry2\n}"
        )
        state = entry_state(module, function)
        with pytest.raises(ExecutionError):
            run_concrete(semantics, state, max_steps=10)


class TestRunSymbolic:
    def test_collects_all_paths(self):
        module, function, semantics = setup(BRANCHY)
        halted = run_symbolic(semantics, entry_state(module, function))
        assert len(halted) == 2
        assert {s.returned.value for s in halted} == {1, 2}

    def test_budget_raises(self):
        module, function, semantics = setup(
            """
define i32 @g(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %head2 ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %head2, label %out
head2:
  %inc = add i32 %i, 1
  br label %head
out:
  ret i32 %i
}
"""
        )
        with pytest.raises(ExecutionError):
            run_symbolic(semantics, entry_state(module, function), max_steps=40)

    def test_halted_states_are_final(self):
        module, function, semantics = setup(BRANCHY)
        for state in run_symbolic(semantics, entry_state(module, function)):
            assert state.status is not StatusKind.RUNNING
