"""repro.util.available_cpus: affinity-mask awareness with fallback."""

import os

from repro import util


class TestAvailableCpus:
    def test_uses_scheduler_affinity_mask(self, monkeypatch):
        """A container cpuset restricting the process to 2 of 64 cores
        must size pools at 2, not 64."""
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {3, 17}, raising=False
        )
        assert util.available_cpus() == 2

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert util.available_cpus() == 6

    def test_falls_back_when_affinity_raises(self, monkeypatch):
        def boom(pid):
            raise OSError("no affinity support")

        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert util.available_cpus() == 3

    def test_never_below_one(self, monkeypatch):
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: set(), raising=False
        )
        assert util.available_cpus() == 1
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert util.available_cpus() == 1

    def test_real_call_is_positive(self):
        assert util.available_cpus() >= 1
