"""Tests for the synchronization point generator (paper Section 4.5)."""

from repro.isel import select_function
from repro.llvm import parse_module
from repro.vcgen import generate_sync_points

ARITH_SEQ_SUM = """
define i32 @arithm_seq_sum(i32 %a0, i32 %d, i32 %n) {
entry:
  br label %for.cond
for.cond:
  %s.0 = phi i32 [ %a0, %entry ], [ %add1, %for.inc ]
  %a.0 = phi i32 [ %a0, %entry ], [ %add, %for.inc ]
  %i.0 = phi i32 [ 1, %entry ], [ %inc, %for.inc ]
  %cmp = icmp ult i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end
for.body:
  %add = add i32 %a.0, %d
  %add1 = add i32 %s.0, %add
  br label %for.inc
for.inc:
  %inc = add i32 %i.0, 1
  br label %for.cond
for.end:
  ret i32 %s.0
}
"""

CALLS = """
define i32 @f(i32 %x) {
entry:
  %r = call i32 @g(i32 %x)
  %a = add i32 %r, %x
  %s = call i32 @h(i32 %a, i32 %r)
  ret i32 %s
}
"""


def points_for(source, name=None, **kwargs):
    module = parse_module(source)
    function = (
        module.function(name) if name else next(iter(module.functions.values()))
    )
    machine, hints = select_function(module, function)
    return generate_sync_points(module, function, machine, hints, **kwargs), hints


class TestEntryExit:
    def test_entry_point_covers_calling_convention(self):
        points, _ = points_for(ARITH_SEQ_SUM)
        entry = next(p for p in points if p.kind == "entry")
        rights = [c.right.payload for c in entry.constraints]
        assert rights == ["rdi", "rsi", "rdx"]

    def test_exit_point_relates_return_values(self):
        points, _ = points_for(ARITH_SEQ_SUM)
        exit_point = next(p for p in points if p.kind == "exit")
        assert not exit_point.executable
        assert exit_point.constraints[0].left.kind == "ret"

    def test_void_function_exit_has_no_ret_constraint(self):
        points, _ = points_for(
            "define void @f() {\nentry:\n  ret void\n}"
        )
        exit_point = next(p for p in points if p.kind == "exit")
        assert exit_point.constraints == ()


class TestLoopPoints:
    def test_one_point_per_predecessor(self):
        """The paper's Figure 3 has p1 (from entry) and p2 (from for.inc)."""
        points, _ = points_for(ARITH_SEQ_SUM)
        loop_points = [p for p in points if p.kind == "loop"]
        previous = {p.left.prev_block for p in loop_points}
        assert previous == {"entry", "for.inc"}

    def test_constraints_cover_live_values_per_edge(self):
        points, hints = points_for(ARITH_SEQ_SUM)
        from_inc = next(
            p for p in points if p.kind == "loop" and p.left.prev_block == "for.inc"
        )
        lefts = {
            c.left.payload for c in from_inc.constraints if c.left.kind == "env"
        }
        # Figure 3's p2 relates %add, %add1, %inc, %n, %d.
        assert {"add", "add1", "inc", "n", "d"} <= lefts

    def test_materialized_constant_becomes_literal_constraint(self):
        """Figure 3's p1 contains the `1 = %vr9_32` constraint."""
        points, _ = points_for(ARITH_SEQ_SUM)
        from_entry = next(
            p for p in points if p.kind == "loop" and p.left.prev_block == "entry"
        )
        literals = [
            c for c in from_entry.constraints if c.left.kind == "lit"
        ]
        assert len(literals) == 1
        assert literals[0].left.payload == 1

    def test_block_correspondence_follows_hints(self):
        points, hints = points_for(ARITH_SEQ_SUM)
        loop_point = next(p for p in points if p.kind == "loop")
        assert loop_point.right.location.block == hints.block_map["for.cond"]

    def test_loop_free_function_has_no_loop_points(self):
        points, _ = points_for(
            "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}"
        )
        assert [p for p in points if p.kind == "loop"] == []


class TestCallPoints:
    def test_pre_and_resume_points_per_call(self):
        points, _ = points_for(CALLS)
        assert len([p for p in points if p.kind == "call"]) == 2
        assert len([p for p in points if p.kind == "resume"]) == 2

    def test_call_point_relates_arguments(self):
        points, _ = points_for(CALLS)
        call_point = next(p for p in points if p.kind == "call")
        assert all(c.left.kind == "arg" for c in call_point.constraints)
        assert not call_point.executable

    def test_resume_point_relates_result_to_rax(self):
        points, _ = points_for(CALLS)
        resume = next(p for p in points if p.kind == "resume")
        result_constraints = [
            c for c in resume.constraints if c.right.payload == "rax"
        ]
        assert len(result_constraints) == 1
        assert result_constraints[0].left.payload == "r"

    def test_resume_point_is_executable(self):
        points, _ = points_for(CALLS)
        assert all(p.executable for p in points if p.kind == "resume")


class TestMemoryTemplate:
    def test_globals_and_frames_in_template(self):
        source = (
            "@g = external global i32\n"
            "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32\n"
            "  store i32 %x, i32* %p\n  %v = load i32, i32* %p\n"
            "  store i32 %v, i32* @g\n  ret i32 %v\n}"
        )
        points, _ = points_for(source)
        entry = next(p for p in points if p.kind == "entry")
        names = {obj.name for obj in entry.memory_objects}
        assert names == {"g", "stack.f.p"}

    def test_all_points_check_memory(self):
        points, _ = points_for(ARITH_SEQ_SUM)
        assert all(p.check_memory for p in points)


class TestPostPhiStyle:
    def test_single_point_per_header(self):
        module = parse_module(ARITH_SEQ_SUM)
        function = module.function("arithm_seq_sum")
        machine, hints = select_function(module, function)
        points = generate_sync_points(
            module, function, machine, hints, loop_point_style="post-phi"
        )
        loop_points = [p for p in points if p.kind == "loop"]
        assert len(loop_points) == 1
        point = loop_points[0]
        assert point.left.prev_block is None
        # Placed after the three phis.
        assert point.left.location.index == 3

    def test_constraints_cover_phi_results(self):
        module = parse_module(ARITH_SEQ_SUM)
        function = module.function("arithm_seq_sum")
        machine, hints = select_function(module, function)
        points = generate_sync_points(
            module, function, machine, hints, loop_point_style="post-phi"
        )
        point = next(p for p in points if p.kind == "loop")
        lefts = {c.left.payload for c in point.constraints if c.left.kind == "env"}
        assert {"s.0", "a.0", "i.0", "n", "d"} <= lefts

    def test_post_phi_style_validates(self):
        from repro.keq import Keq, Verdict, default_acceptability
        from repro.llvm.semantics import LlvmSemantics
        from repro.vx86.semantics import Vx86Semantics

        module = parse_module(ARITH_SEQ_SUM)
        function = module.function("arithm_seq_sum")
        machine, hints = select_function(module, function)
        points = generate_sync_points(
            module, function, machine, hints, loop_point_style="post-phi"
        )
        keq = Keq(
            LlvmSemantics(module),
            Vx86Semantics({machine.name: machine}),
            default_acceptability(),
        )
        assert keq.check_equivalence(points).verdict is Verdict.VALIDATED


class TestImpreciseLiveness:
    def test_imprecise_mode_adds_spurious_constraints(self):
        precise, _ = points_for(ARITH_SEQ_SUM)
        imprecise, _ = points_for(ARITH_SEQ_SUM, imprecise_liveness=True)

        def names(points_set, prev):
            point = next(
                p
                for p in points_set
                if p.kind == "loop" and p.left.prev_block == prev
            )
            return {
                c.left.payload for c in point.constraints if c.left.kind == "env"
            }

        assert names(precise, "entry") < names(imprecise, "entry")

    def test_spec_size_metric(self):
        points, _ = points_for(ARITH_SEQ_SUM)
        assert points.spec_size() > 0
