"""Sync-point inference over Virtual RISC-V lowerings.

The generator itself is target-parametric — only the calling convention
is resolved through the target registry — so these tests pin the
RISC-V-specific surface: ABI registers at entry/exit/resume, and loop
points over the fused compare-and-branch control flow the vx86 backend
does not produce.
"""

from repro.isel.riscv import select_function
from repro.llvm import parse_module
from repro.vcgen import generate_sync_points

ARITH_SEQ_SUM = """
define i32 @arithm_seq_sum(i32 %a0, i32 %d, i32 %n) {
entry:
  br label %for.cond
for.cond:
  %s.0 = phi i32 [ %a0, %entry ], [ %add1, %for.inc ]
  %a.0 = phi i32 [ %a0, %entry ], [ %add, %for.inc ]
  %i.0 = phi i32 [ 1, %entry ], [ %inc, %for.inc ]
  %cmp = icmp ult i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end
for.body:
  %add = add i32 %a.0, %d
  %add1 = add i32 %s.0, %add
  br label %for.inc
for.inc:
  %inc = add i32 %i.0, 1
  br label %for.cond
for.end:
  ret i32 %s.0
}
"""

CALLS = """
define i32 @f(i32 %x) {
entry:
  %r = call i32 @g(i32 %x)
  %a = add i32 %r, %x
  ret i32 %a
}
"""


def points_for(source, name=None, **kwargs):
    module = parse_module(source)
    function = (
        module.function(name) if name else next(iter(module.functions.values()))
    )
    machine, hints = select_function(module, function)
    return (
        generate_sync_points(
            module, function, machine, hints, target="vriscv", **kwargs
        ),
        hints,
        machine,
    )


class TestCallingConvention:
    def test_entry_point_covers_riscv_argument_registers(self):
        points, _, _ = points_for(ARITH_SEQ_SUM)
        entry = next(p for p in points if p.kind == "entry")
        rights = [c.right.payload for c in entry.constraints]
        assert rights == ["a0", "a1", "a2"]

    def test_exit_point_resolves_return_through_registry(self):
        """The exit constraint is abstract (``ret``/``ret``); the concrete
        register comes from the registry when the VC is built."""
        from repro.targets import get_target

        points, _, _ = points_for(ARITH_SEQ_SUM)
        exit_point = next(p for p in points if p.kind == "exit")
        ret = next(c for c in exit_point.constraints if c.left.kind == "ret")
        assert ret.right.kind == "ret"
        assert get_target("vriscv").return_register == "a0"

    def test_resume_point_relates_result_to_a0(self):
        points, _, _ = points_for(CALLS)
        resume = next(p for p in points if p.kind == "resume")
        result_constraints = [
            c for c in resume.constraints if c.right.payload == "a0"
        ]
        assert len(result_constraints) == 1
        assert result_constraints[0].left.payload == "r"


class TestLoopPointsOverFusedBranches:
    def test_one_point_per_predecessor(self):
        points, _, _ = points_for(ARITH_SEQ_SUM)
        loop_points = [p for p in points if p.kind == "loop"]
        previous = {p.left.prev_block for p in loop_points}
        assert previous == {"entry", "for.inc"}

    def test_loop_header_has_fused_branch_not_materialized_compare(self):
        """The loop exit condition lowers to ``bgeu``/``bltu`` — the sync
        points must still land on the header hinted block."""
        points, hints, machine = points_for(ARITH_SEQ_SUM)
        header = hints.block_map["for.cond"]
        opcodes = [i.opcode for i in machine.block(header).instructions]
        assert any(op in ("bltu", "bgeu") for op in opcodes)
        assert "sltu" not in opcodes
        loop_point = next(p for p in points if p.kind == "loop")
        assert loop_point.right.location.block == header

    def test_constraints_cover_live_values_per_edge(self):
        points, _, _ = points_for(ARITH_SEQ_SUM)
        from_inc = next(
            p
            for p in points
            if p.kind == "loop" and p.left.prev_block == "for.inc"
        )
        lefts = {
            c.left.payload for c in from_inc.constraints if c.left.kind == "env"
        }
        assert {"add", "add1", "inc", "n", "d"} <= lefts

    def test_all_points_check_memory(self):
        points, _, _ = points_for(ARITH_SEQ_SUM)
        assert all(p.check_memory for p in points)
