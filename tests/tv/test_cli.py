"""Tests for the command-line driver (the artifact's run-tests.py analogue)."""

import pytest

from repro.cli import main

SIMPLE = """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  ret i32 %a
}
"""

WAW = """
@b = external global [8 x i8]
define void @foo() {
entry:
  store i16 0, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 2) to i16*)
  store i16 2, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 3) to i16*)
  store i16 1, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 0) to i16*)
  ret void
}
"""


@pytest.fixture
def simple_file(tmp_path):
    path = tmp_path / "simple.ll"
    path.write_text(SIMPLE)
    return str(path)


@pytest.fixture
def waw_file(tmp_path):
    path = tmp_path / "waw.ll"
    path.write_text(WAW)
    return str(path)


class TestSingle:
    def test_validates_simple_function(self, simple_file, capsys):
        assert main(["single", simple_file]) == 0
        out = capsys.readouterr().out
        assert "succeeded" in out

    def test_bug_flag_produces_failure_exit(self, waw_file, capsys):
        assert main(["single", waw_file, "--bug", "waw"]) == 1
        out = capsys.readouterr().out
        assert "miscompiled" in out

    def test_merge_stores_flag_validates(self, waw_file):
        assert main(["single", waw_file, "--merge-stores"]) == 0

    def test_explicit_function_name(self, simple_file):
        assert main(["single", simple_file, "--function", "f"]) == 0

    def test_imprecise_liveness_flag(self, tmp_path, capsys):
        path = tmp_path / "loop.ll"
        path.write_text(
            """
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %head ]
  %inc = add i32 %i, 1
  %c = icmp ult i32 %inc, %n
  br i1 %c, label %head, label %done
done:
  ret i32 %i
}
"""
        )
        assert main(["single", str(path), "--imprecise-liveness"]) == 1
        assert "other" in capsys.readouterr().out


class TestProof:
    def test_proof_flag_records_and_rechecks(self, simple_file, capsys):
        assert main(["single", simple_file, "--proof"]) == 0
        out = capsys.readouterr().out
        assert "equivalence proof" in out
        assert "proof re-check: ok=True" in out


class TestShow:
    def test_prints_machine_code_and_points(self, simple_file, capsys):
        assert main(["show", simple_file]) == 0
        out = capsys.readouterr().out
        assert ".LBB0" in out
        assert "sync point p_entry" in out


class TestCampaign:
    def test_small_campaign_runs(self, capsys):
        assert main(["campaign", "run", "--scale", "6", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "Succeeded" in out

    def test_campaign_jobs_and_cache_dir_flags(self, tmp_path, capsys):
        directory = str(tmp_path / "qc")
        argv = [
            "campaign", "run", "--scale", "6", "--seed", "11",
            "--jobs", "2", "--cache-dir", directory,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out
        assert "Succeeded" in out
        assert "solver: queries=" in out
        # Second run reuses the persistent cache: the hit counter is live.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache_hits=0 " not in warm

    def test_campaign_dir_run_and_status(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        argv = [
            "campaign", "run", "--scale", "6", "--seed", "11",
            "--dir", directory, "--shards", "2",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "functions accounted (complete)" in out
        assert "shard 0:" in out and "shard 1:" in out
        assert main(["campaign", "status", directory]) == 0
        status = capsys.readouterr().out
        assert "campaign status: complete" in status
        # A second run into the same directory is refused.
        with pytest.raises(SystemExit):
            main(argv)

    def test_campaign_resume_without_manifest_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "resume", str(tmp_path / "nope")])


class TestPortfolioFlag:
    def test_single_accepts_portfolio(self, simple_file, capsys):
        assert main(["single", simple_file, "--portfolio", "3"]) == 0
        out = capsys.readouterr().out
        assert "validated" in out

    def test_campaign_run_accepts_portfolio(self, capsys):
        assert (
            main(
                [
                    "campaign", "run", "--scale", "6", "--seed", "11",
                    "--portfolio", "2",
                ]
            )
            == 0
        )
        assert "Succeeded" in capsys.readouterr().out

    def test_worker_recv_flags_parse(self):
        # Parse-only: the worker would dial out, so just build the parser
        # path far enough to see the attributes land.
        import argparse

        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "service", "worker", "--connect", "127.0.0.1:1",
                "--recv-timeout", "2.5", "--recv-retries", "5",
            ]
        )
        assert args.recv_timeout == 2.5
        assert args.recv_retries == 5

    def test_service_coordinate_accepts_portfolio(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "service", "coordinate", "--dir", "camp", "--scale", "6",
                "--portfolio", "4",
            ]
        )
        assert args.portfolio == 4


class TestPortfolioTuningFlags:
    def test_mode_and_probe_parse_everywhere(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "single", "x.ll", "--portfolio", "2",
                "--portfolio-mode", "processes", "--portfolio-probe", "64",
            ]
        )
        assert args.portfolio_mode == "processes"
        assert args.portfolio_probe == 64
        args = parser.parse_args(
            [
                "campaign", "run", "--scale", "6",
                "--portfolio", "2", "--portfolio-mode", "threads",
            ]
        )
        assert args.portfolio_mode == "threads"
        args = parser.parse_args(
            [
                "service", "coordinate", "--dir", "camp", "--scale", "6",
                "--portfolio", "4", "--portfolio-probe", "0",
            ]
        )
        assert args.portfolio_probe == 0

    def test_single_runs_with_mode_and_probe(self, simple_file, capsys):
        argv = [
            "single", simple_file, "--portfolio", "2",
            "--portfolio-mode", "interleave", "--portfolio-probe", "0",
        ]
        assert main(argv) == 0
        assert "validated" in capsys.readouterr().out

    def test_campaign_run_with_triage_probe(self, capsys):
        argv = [
            "campaign", "run", "--scale", "6", "--seed", "11",
            "--portfolio", "2", "--portfolio-probe", "128",
        ]
        assert main(argv) == 0
        assert "Succeeded" in capsys.readouterr().out

    def test_mode_without_racing_width_rejected(self, simple_file):
        with pytest.raises(SystemExit) as exc:
            main(
                ["single", simple_file, "--portfolio-mode", "processes"]
            )
        assert "--portfolio 1" in str(exc.value)

    def test_probe_without_racing_width_rejected(self, simple_file):
        with pytest.raises(SystemExit) as exc:
            main(["single", simple_file, "--portfolio-probe", "64"])
        assert "--portfolio 1" in str(exc.value)

    def test_negative_probe_rejected(self, simple_file):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "single", simple_file, "--portfolio", "2",
                    "--portfolio-probe", "-1",
                ]
            )
        assert ">= 0" in str(exc.value)

    def test_campaign_mode_without_width_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "campaign", "run", "--scale", "6",
                    "--dir", str(tmp_path / "camp"),
                    "--portfolio-mode", "threads",
                ]
            )
        assert "--portfolio 1" in str(exc.value)
