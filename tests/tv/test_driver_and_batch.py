"""Tests for the TV driver (outcome classification) and the batch runner."""

import dataclasses

import pytest

from repro.isel import BugMode, IselOptions
from repro.keq import KeqOptions
from repro.llvm import parse_module
from repro.tv import Category, TvOptions, TvOutcome, validate_function
from repro.tv.batch import BatchResult, corpus_overrides, run_batch, run_corpus
from repro.workloads import FunctionShape, gcc_like_corpus, generate_module

SIMPLE = "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 1\n  ret i32 %a\n}"

LOOP = """
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %acc2 = add i32 %acc, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %acc
}
"""


class TestDriverClassification:
    def test_simple_function_succeeds(self):
        outcome = validate_function(parse_module(SIMPLE), "f")
        assert outcome.category == Category.SUCCEEDED
        assert outcome.ok

    def test_loop_function_succeeds(self):
        outcome = validate_function(parse_module(LOOP), "sum")
        assert outcome.category == Category.SUCCEEDED

    def test_code_size_recorded(self):
        outcome = validate_function(parse_module(LOOP), "sum")
        assert outcome.code_size == 9  # the LOOP function's instruction count

    def test_unsupported_function_classified(self):
        source = (
            "define i32 @f(i32 %a, i32 %b, i32 %c, i32 %d, i32 %e,"
            " i32 %g, i32 %h) {\nentry:\n  ret i32 %a\n}"
        )
        outcome = validate_function(parse_module(source), "f")
        assert outcome.category == Category.UNSUPPORTED

    def test_timeout_classification(self):
        options = TvOptions(keq=KeqOptions(max_steps=2))
        outcome = validate_function(parse_module(LOOP), "sum", options)
        assert outcome.category == Category.TIMEOUT

    def test_oom_classification(self):
        options = TvOptions(parser_memory_budget=1)
        outcome = validate_function(parse_module(LOOP), "sum", options)
        assert outcome.category == Category.OOM

    def test_imprecise_liveness_gives_other(self):
        options = TvOptions(imprecise_liveness=True)
        outcome = validate_function(parse_module(LOOP), "sum", options)
        assert outcome.category == Category.OTHER
        assert "inadequate" in outcome.detail

    def test_miscompilation_classification(self):
        source = """
@b = external global [8 x i8]
define void @foo() {
entry:
  store i16 0, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 2) to i16*)
  store i16 2, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 3) to i16*)
  store i16 1, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 0) to i16*)
  ret void
}
"""
        options = TvOptions(isel=IselOptions(bug=BugMode.WAW_STORE_MERGE))
        outcome = validate_function(parse_module(source), "foo", options)
        assert outcome.category == Category.MISCOMPILED


class TestBatch:
    def test_batch_over_module(self):
        module = generate_module(
            [
                ("a", FunctionShape(loops=0, diamonds=0), 1),
                ("b", FunctionShape(loops=1), 2),
            ]
        )
        result = run_batch(module)
        assert len(result.outcomes) == 2
        assert result.success_rate() == 1.0

    def test_figure6_rows_structure(self):
        module = generate_module([("a", FunctionShape(loops=0, diamonds=0), 1)])
        rows = run_batch(module).figure6_rows()
        labels = [label for label, _ in rows]
        assert labels == [
            "Succeeded",
            "Failed due to timeout",
            "Failed due to out-of-memory",
            "Other",
            "Total",
        ]

    def test_unsupported_excluded_from_denominator(self):
        module = generate_module(
            [
                ("ok", FunctionShape(loops=0, diamonds=0), 1),
                ("bad", FunctionShape(unsupported=True), 2),
            ]
        )
        result = run_batch(module)
        assert len(result.supported) == 1
        assert result.figure6_rows()[-1] == ("Total", 1)

    def test_overrides_apply_per_function(self):
        module = parse_module(LOOP)
        overrides = {"sum": TvOptions(imprecise_liveness=True)}
        result = run_batch(module, overrides=overrides)
        assert result.outcomes[0].category == Category.OTHER

    def test_small_corpus_proportions(self):
        corpus = gcc_like_corpus(scale=12, seed=99)
        result = run_corpus(corpus)
        by_name = corpus.by_name()
        for outcome in result.outcomes:
            assert outcome.category == by_name[outcome.function].expect, (
                outcome.function,
                outcome.category,
                outcome.detail,
            )

    def test_summary_renders(self):
        module = generate_module([("a", FunctionShape(loops=0, diamonds=0), 1)])
        text = run_batch(module).summary()
        assert "Succeeded" in text and "success rate" in text

    def test_summary_includes_solver_line(self):
        module = generate_module([("a", FunctionShape(loops=0, diamonds=1), 1)])
        text = run_batch(module).summary()
        assert "solver: queries=" in text
        assert "hit-rate=" in text


class TestCategoryCounts:
    @staticmethod
    def _result():
        categories = (
            [Category.SUCCEEDED] * 3
            + [Category.TIMEOUT] * 2
            + [Category.OOM, Category.OTHER, Category.MISCOMPILED]
            + [Category.UNSUPPORTED] * 2
        )
        return BatchResult(
            outcomes=[
                TvOutcome(f"f{i}", category)
                for i, category in enumerate(categories)
            ]
        )

    def test_counts_match_manual_tally(self):
        result = self._result()
        counts = result.category_counts
        assert counts[Category.SUCCEEDED] == 3
        assert counts[Category.TIMEOUT] == 2
        assert counts[Category.UNSUPPORTED] == 2
        assert result.count(Category.OOM) == 1
        assert result.count("no-such-category") == 0

    def test_figure6_rows_consistent_with_counts(self):
        result = self._result()
        rows = dict(result.figure6_rows())
        assert rows["Succeeded"] == 3
        assert rows["Failed due to timeout"] == 2
        assert rows["Failed due to out-of-memory"] == 1
        assert rows["Other"] == 2  # OTHER + MISCOMPILED
        assert rows["Total"] == 8  # unsupported excluded
        assert result.success_rate() == 3 / 8


class TestCorpusOverrides:
    def test_overrides_inherit_passed_base_options(self):
        corpus = gcc_like_corpus(scale=6, seed=11)
        base = TvOptions(keq=KeqOptions(max_steps=7))
        overrides = corpus_overrides(corpus, base)
        imprecise = [s for s in corpus.functions if s.imprecise_liveness]
        assert imprecise, "corpus should designate imprecise functions"
        assert set(overrides) == {s.name for s in imprecise}
        for options in overrides.values():
            assert options.imprecise_liveness is True
            # Regression: the override used to be built from the *default*
            # options, silently dropping the campaign configuration.
            assert options.keq.max_steps == 7

    def test_run_corpus_imprecise_function_keeps_base_budget(self):
        corpus = gcc_like_corpus(scale=6, seed=11)
        imprecise = {
            s.name for s in corpus.functions if s.imprecise_liveness
        }
        # With a 2-step budget inherited by the override, the imprecise
        # function runs out of steps (TIMEOUT) before the inadequate sync
        # points can manifest; with the (buggy) default-derived override it
        # would report OTHER under the default 4000-step budget.
        result = run_corpus(corpus, TvOptions(keq=KeqOptions(max_steps=2)))
        by_name = {o.function: o for o in result.outcomes}
        for name in imprecise:
            assert by_name[name].category == Category.TIMEOUT
