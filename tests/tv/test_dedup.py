"""Cross-function sync-point dedup: fingerprints, planning, and replay."""

import dataclasses

from repro.tv import Category, TvOptions
from repro.tv.batch import run_corpus
from repro.tv.dedup import alpha_rename, plan_dedup, spec_fingerprint
from repro.workloads import FunctionShape
from repro.workloads.corpus import CorpusSpec, FunctionSpec

SMALL = FunctionShape(straight_segments=1, ops_per_segment=3)
LOOPY = FunctionShape(
    straight_segments=2, ops_per_segment=4, diamonds=1, loops=1, memory_ops=1
)


def clone_corpus():
    """Three alpha-equivalent clones plus two structurally distinct
    functions (one of them a clone pair of its own)."""
    return CorpusSpec(
        functions=[
            FunctionSpec("alpha_one", SMALL, seed=7, expect="succeeded"),
            FunctionSpec("beta_solo", LOOPY, seed=9, expect="succeeded"),
            FunctionSpec("alpha_two", SMALL, seed=7, expect="succeeded"),
            FunctionSpec("alpha_three", SMALL, seed=7, expect="succeeded"),
            FunctionSpec("gamma_solo", SMALL, seed=8, expect="succeeded"),
        ]
    )


class TestAlphaRename:
    def test_first_occurrence_order(self):
        assert (
            alpha_rename("%x = add i32 %y, %x")
            == "%r0 = add i32 %r1, %r0"
        )

    def test_consistent_across_lines(self):
        left = alpha_rename("%a = add i32 %b, 1\n%c = mul i32 %a, %b")
        right = alpha_rename("%p = add i32 %q, 1\n%r = mul i32 %p, %q")
        assert left == right

    def test_distinguishes_structure(self):
        # Same token multiset, different dataflow: not alpha-equivalent.
        assert alpha_rename("%a = add i32 %a, %b") != alpha_rename(
            "%a = add i32 %b, %b"
        )


class TestSpecFingerprint:
    def test_clones_share_fingerprint(self):
        corpus = clone_corpus()
        module = corpus.build_module()
        base = TvOptions()
        prints = {
            name: spec_fingerprint(module, name, base)
            for name in ("alpha_one", "alpha_two", "alpha_three")
        }
        assert prints["alpha_one"] is not None
        assert len(set(prints.values())) == 1

    def test_different_shape_different_fingerprint(self):
        corpus = clone_corpus()
        module = corpus.build_module()
        base = TvOptions()
        assert spec_fingerprint(module, "alpha_one", base) != spec_fingerprint(
            module, "beta_solo", base
        )

    def test_options_participate(self):
        """Two functions validated under different options must never share
        a class — liveness variants change the sync-point spec contract."""
        corpus = clone_corpus()
        module = corpus.build_module()
        base = TvOptions()
        imprecise = dataclasses.replace(base, imprecise_liveness=True)
        assert spec_fingerprint(module, "alpha_one", base) != spec_fingerprint(
            module, "alpha_one", imprecise
        )

    def test_target_participates(self):
        """The same IR validated against different target ISAs produces
        different specs — classes never alias across ``--target``."""
        corpus = clone_corpus()
        module = corpus.build_module()
        vx86 = TvOptions(target="vx86")
        vriscv = TvOptions(target="vriscv")
        assert spec_fingerprint(module, "alpha_one", vx86) != spec_fingerprint(
            module, "alpha_one", vriscv
        )

    def test_clones_still_share_within_a_target(self):
        corpus = clone_corpus()
        module = corpus.build_module()
        vriscv = TvOptions(target="vriscv")
        assert spec_fingerprint(module, "alpha_one", vriscv) == spec_fingerprint(
            module, "alpha_two", vriscv
        )

    def test_unsupported_function_is_not_fingerprinted(self):
        corpus = CorpusSpec(
            functions=[
                FunctionSpec(
                    "weird",
                    FunctionShape(unsupported=True),
                    seed=1,
                    expect="unsupported",
                )
            ]
        )
        module = corpus.build_module()
        assert spec_fingerprint(module, "weird", TvOptions()) is None

    def test_function_with_calls_is_not_fingerprinted(self):
        """Call outcomes depend on callee bodies, which the fingerprint
        does not cover — such functions validate individually."""
        shape = dataclasses.replace(LOOPY, calls=1)
        corpus = CorpusSpec(
            functions=[FunctionSpec("caller", shape, seed=3, expect="succeeded")]
        )
        module = corpus.build_module()
        assert spec_fingerprint(module, "caller", TvOptions()) is None


CALLS_LL = """
define i32 @helper(i32 %x) {
entry:
  %a = add i32 %x, 1
  ret i32 %a
}
define i32 @shouty(i32 %x) {
entry:
  %a = sub i32 %x, 1
  ret i32 %a
}
define i32 @caller_one(i32 %x) {
entry:
  %r = call i32 @helper(i32 %x)
  %s = add i32 %r, 2
  ret i32 %s
}
define i32 @caller_two(i32 %x) {
entry:
  %r = call i32 @helper(i32 %x)
  %s = add i32 %r, 2
  ret i32 %s
}
define i32 @caller_three(i32 %x) {
entry:
  %r = call i32 @shouty(i32 %x)
  %s = add i32 %r, 2
  ret i32 %s
}
define i32 @caller_ghost(i32 %x) {
entry:
  %r = call i32 @ghost(i32 %x)
  %s = add i32 %r, 2
  ret i32 %s
}
"""


class TestCalleeRegion:
    """Fingerprints extended over the reachable defined-callee region."""

    def _module(self):
        from repro.llvm import parse_module

        return parse_module(CALLS_LL)

    def test_same_callee_body_shares_fingerprint(self):
        """caller_one/caller_two differ only in their own (canonicalised)
        name; the shared helper body folds into one region hash.  (SSA
        value names must coincide: sync-point payloads carry bare names,
        the corpus-generator caveat in the module docstring.)"""
        module = self._module()
        base = TvOptions()
        one = spec_fingerprint(module, "caller_one", base)
        two = spec_fingerprint(module, "caller_two", base)
        assert one is not None
        assert one == two

    def test_different_callee_body_splits_fingerprint(self):
        """caller_three is textually caller_one modulo names, but its
        callee computes sub instead of add — the region hash must differ."""
        module = self._module()
        base = TvOptions()
        assert spec_fingerprint(module, "caller_one", base) != spec_fingerprint(
            module, "caller_three", base
        )

    def test_missing_callee_disables_dedup(self):
        module = self._module()
        assert spec_fingerprint(module, "caller_ghost", TvOptions()) is None

    def test_declared_external_boundary_enables_dedup(self):
        module = self._module()
        fingerprint = spec_fingerprint(
            module,
            "caller_ghost",
            TvOptions(),
            known_externals=frozenset({"ghost"}),
        )
        assert fingerprint is not None

    def test_corpus_external_calls_dedup_with_known_externals(self):
        from repro.workloads import EXTERNAL_CALLEES

        shape = dataclasses.replace(LOOPY, calls=1)
        corpus = CorpusSpec(
            functions=[
                FunctionSpec("call_a", shape, seed=3, expect="succeeded"),
                FunctionSpec("call_b", shape, seed=3, expect="succeeded"),
            ]
        )
        module = corpus.build_module()
        plan = plan_dedup(
            module,
            list(module.functions),
            TvOptions(),
            known_externals=frozenset(EXTERNAL_CALLEES),
        )
        assert plan.replay == {"call_b": "call_a"}

    def test_corpus_external_calls_conservative_by_default(self):
        shape = dataclasses.replace(LOOPY, calls=1)
        corpus = CorpusSpec(
            functions=[
                FunctionSpec("call_a", shape, seed=3, expect="succeeded"),
                FunctionSpec("call_b", shape, seed=3, expect="succeeded"),
            ]
        )
        module = corpus.build_module()
        plan = plan_dedup(module, list(module.functions), TvOptions())
        assert plan.replay == {}
        assert plan.run_names == ["call_a", "call_b"]


class TestPlanDedup:
    def test_representatives_and_replay(self):
        corpus = clone_corpus()
        module = corpus.build_module()
        names = list(module.functions)
        plan = plan_dedup(module, names, TvOptions(), {})
        # First clone in corpus order represents the class.
        assert plan.replay == {
            "alpha_two": "alpha_one",
            "alpha_three": "alpha_one",
        }
        assert plan.run_names == ["alpha_one", "beta_solo", "gamma_solo"]
        assert plan.classes == 3
        assert plan.deduped == 2

    def test_override_splits_class(self):
        corpus = clone_corpus()
        module = corpus.build_module()
        names = list(module.functions)
        base = TvOptions()
        overrides = {
            "alpha_two": dataclasses.replace(base, imprecise_liveness=True)
        }
        plan = plan_dedup(module, names, base, overrides)
        assert plan.replay == {"alpha_three": "alpha_one"}
        assert "alpha_two" in plan.run_names


class TestRunCorpusDedup:
    def test_replayed_outcomes_are_marked_and_identical(self):
        corpus = clone_corpus()
        base = TvOptions()
        deduped = run_corpus(corpus, base, dedup=True)
        plain = run_corpus(corpus, base, dedup=False)
        # Same functions, same order, same verdicts either way.
        assert [(o.function, o.category) for o in deduped.outcomes] == [
            (o.function, o.category) for o in plain.outcomes
        ]
        by_name = {o.function: o for o in deduped.outcomes}
        for duplicate in ("alpha_two", "alpha_three"):
            outcome = by_name[duplicate]
            assert outcome.deduped
            assert outcome.dedup_of == "alpha_one"
            assert outcome.seconds == 0.0
            assert outcome.solver_stats is None
            assert "[deduped: alpha_one]" in str(outcome)
        assert not by_name["alpha_one"].deduped
        assert deduped.dedup_classes == 3
        assert deduped.deduped_functions == 2
        assert "dedup: 3 classes, 2 outcomes replayed" in deduped.summary()
        assert by_name["alpha_one"].category == Category.SUCCEEDED

    def test_dedup_skips_solver_work(self):
        corpus = clone_corpus()
        base = TvOptions()
        deduped = run_corpus(corpus, base, dedup=True)
        plain = run_corpus(corpus, base, dedup=False)
        assert deduped.solver_stats.queries < plain.solver_stats.queries

    def test_dedup_off_has_no_markers(self):
        corpus = clone_corpus()
        result = run_corpus(corpus, TvOptions(), dedup=False)
        assert all(not o.deduped for o in result.outcomes)
        assert result.dedup_classes == 0
        assert result.deduped_functions == 0
        assert "dedup:" not in result.summary()
