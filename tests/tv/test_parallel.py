"""Tests for the parallel batch driver (fan-out, hard kill, determinism)."""

import time

from repro.keq import KeqOptions
from repro.tv import Category, TvOptions
from repro.tv.batch import corpus_overrides, run_batch, run_corpus
from repro.tv.parallel import default_validate, run_batch_parallel
from repro.workloads import FunctionShape, gcc_like_corpus, generate_module


def _outcome_keys(result):
    return [(o.function, o.category) for o in result.outcomes]


# -- worker hooks: must be module-level so spawn children can import them ----


def hang_on_marked(module, name, options, cache):
    """Sleeps forever on functions named ``*hang*`` (hard-kill exercise)."""
    if "hang" in name:
        time.sleep(3600)
    return default_validate(module, name, options, cache)


def crash_on_marked(module, name, options, cache):
    if "crash" in name:
        raise RuntimeError("injected validation crash")
    return default_validate(module, name, options, cache)


def die_on_marked(module, name, options, cache):
    if "die" in name:
        import os

        os._exit(17)  # simulate a segfault/OOM-kill: no exception, no reply
    return default_validate(module, name, options, cache)


class TestJobsOneIdentity:
    def test_jobs1_equals_sequential_on_corpus(self):
        corpus = gcc_like_corpus(scale=8, seed=7)
        module = corpus.build_module()
        base = TvOptions()  # no wall budget: outcomes are step-budget exact
        overrides = corpus_overrides(corpus, base)
        sequential = run_batch(module, base, overrides=overrides)
        parallel = run_batch_parallel(
            module, base, jobs=1, overrides=overrides
        )
        assert _outcome_keys(parallel) == _outcome_keys(sequential)
        for seq, par in zip(sequential.outcomes, parallel.outcomes):
            assert seq.detail == par.detail
            assert seq.sync_points == par.sync_points
            assert seq.code_size == par.code_size

    def test_jobs2_preserves_input_order(self):
        corpus = gcc_like_corpus(scale=8, seed=7)
        module = corpus.build_module()
        base = TvOptions()
        overrides = corpus_overrides(corpus, base)
        sequential = run_batch(module, base, overrides=overrides)
        parallel = run_batch_parallel(
            module, base, jobs=2, overrides=overrides
        )
        assert _outcome_keys(parallel) == _outcome_keys(sequential)

    def test_merged_solver_stats(self):
        module = generate_module(
            [
                ("a", FunctionShape(loops=0, diamonds=1), 1),
                ("b", FunctionShape(loops=1), 2),
            ]
        )
        result = run_batch_parallel(module, jobs=1)
        assert result.solver_stats.queries > 0


class TestJobsClamp:
    """Oversubscription fix: jobs are clamped to the core count, and a
    single effective worker short-circuits to the sequential runner."""

    def test_jobs4_on_one_core_runs_sequentially(self, monkeypatch, caplog):
        import logging

        import repro.tv.parallel as parallel_module

        corpus = gcc_like_corpus(scale=6, seed=5)
        module = corpus.build_module()
        base = TvOptions()
        calls = {}
        real_run_batch = parallel_module.run_batch

        def spy_run_batch(*args, **kwargs):
            calls["sequential"] = True
            return real_run_batch(*args, **kwargs)

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 1)
        monkeypatch.setattr(parallel_module, "run_batch", spy_run_batch)
        with caplog.at_level(logging.INFO, logger="repro.tv.parallel"):
            result = run_batch_parallel(module, base, jobs=4)
        assert calls.get("sequential") is True
        assert any(
            "clamping jobs=4" in r.getMessage() for r in caplog.records
        )
        sequential = run_batch(module, base)
        assert _outcome_keys(result) == _outcome_keys(sequential)

    def test_jobs4_on_one_core_no_slower_than_sequential(self, monkeypatch):
        """The acceptance criterion behind BENCH_parallel.json's 0.24x row:
        with the clamp, --jobs 4 never pays spawn/re-parse overhead on a
        box that cannot run workers concurrently."""
        import repro.tv.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 1)
        corpus = gcc_like_corpus(scale=6, seed=5)
        module = corpus.build_module()
        base = TvOptions()
        started = time.perf_counter()
        sequential = run_batch(module, base)
        sequential_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        clamped = run_batch_parallel(module, base, jobs=4)
        clamped_elapsed = time.perf_counter() - started
        assert _outcome_keys(clamped) == _outcome_keys(sequential)
        # Identical code path modulo noise; the old pool was ~4x slower.
        assert clamped_elapsed < sequential_elapsed * 2 + 0.5

    def test_injected_validate_keeps_requested_fanout(self, monkeypatch):
        """Test hooks exercising pool mechanics (hang/crash/die) must not
        be rerouted to the sequential runner by the clamp."""
        import repro.tv.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "available_cpus", lambda: 1)

        def fail_run_batch(*args, **kwargs):
            raise AssertionError("sequential fallback must not trigger")

        monkeypatch.setattr(parallel_module, "run_batch", fail_run_batch)
        module = generate_module(
            [("ok_one", FunctionShape(loops=0, diamonds=0), 1)]
        )
        result = run_batch_parallel(
            module, TvOptions(), jobs=2, validate=crash_on_marked
        )
        assert result.outcomes[0].category == Category.SUCCEEDED


class TestHardKill:
    def test_hung_function_times_out_without_stalling_pool(self):
        module = generate_module(
            [
                ("ok_one", FunctionShape(loops=0, diamonds=0), 1),
                ("hang_me", FunctionShape(loops=0, diamonds=0), 2),
                ("ok_two", FunctionShape(loops=0, diamonds=0), 3),
            ]
        )
        options = TvOptions(keq=KeqOptions(wall_budget_seconds=0.2))
        started = time.perf_counter()
        result = run_batch_parallel(
            module,
            options,
            jobs=2,
            validate=hang_on_marked,
            grace_factor=1.0,
            grace_slack=0.5,
        )
        elapsed = time.perf_counter() - started
        by_name = {o.function: o for o in result.outcomes}
        assert by_name["hang_me"].category == Category.TIMEOUT
        assert "hard wall-clock kill" in by_name["hang_me"].detail
        assert by_name["ok_one"].category == Category.SUCCEEDED
        assert by_name["ok_two"].category == Category.SUCCEEDED
        assert elapsed < 60  # the pool drained instead of stalling

    def test_crashing_function_is_other_with_traceback(self):
        module = generate_module(
            [
                ("ok_one", FunctionShape(loops=0, diamonds=0), 1),
                ("crash_me", FunctionShape(loops=0, diamonds=0), 2),
            ]
        )
        result = run_batch_parallel(
            module, TvOptions(), jobs=1, validate=crash_on_marked
        )
        by_name = {o.function: o for o in result.outcomes}
        assert by_name["crash_me"].category == Category.OTHER
        assert "injected validation crash" in by_name["crash_me"].detail
        assert by_name["ok_one"].category == Category.SUCCEEDED

    def test_dead_worker_is_other_and_pool_recovers(self):
        module = generate_module(
            [
                ("die_hard", FunctionShape(loops=0, diamonds=0), 1),
                ("ok_one", FunctionShape(loops=0, diamonds=0), 2),
                ("ok_two", FunctionShape(loops=0, diamonds=0), 3),
            ]
        )
        result = run_batch_parallel(
            module, TvOptions(), jobs=1, validate=die_on_marked
        )
        by_name = {o.function: o for o in result.outcomes}
        assert by_name["die_hard"].category == Category.OTHER
        assert "worker process died" in by_name["die_hard"].detail
        assert by_name["ok_one"].category == Category.SUCCEEDED
        assert by_name["ok_two"].category == Category.SUCCEEDED


class TestCampaignSessionCore:
    """Campaign-scoped solver state: one SessionCore per worker, reset on
    poison pills, verdict-identical to function scope."""

    def _campaign_options(self):
        import dataclasses

        base = TvOptions()
        return dataclasses.replace(
            base,
            keq=dataclasses.replace(
                base.keq,
                incremental_solving=True,
                session_scope="campaign",
            ),
        )

    def test_poison_pill_resets_worker_campaign_core(self, monkeypatch):
        """A crashing function must quarantine the worker's shared SAT
        state: the core is reset and later functions validate cleanly."""
        import multiprocessing as mp

        import repro.tv.batch as batch_module
        from repro.smt import SessionCore
        from repro.tv.parallel import _worker_main

        module = generate_module(
            [
                ("ok_one", FunctionShape(loops=0, diamonds=1), 1),
                ("poison_me", FunctionShape(loops=0, diamonds=0), 2),
                ("ok_two", FunctionShape(loops=0, diamonds=1), 3),
            ]
        )
        options = self._campaign_options()
        core = SessionCore(scope="campaign")
        monkeypatch.setattr(
            batch_module, "campaign_session_core", lambda _options: core
        )

        class _PoisonOptions:
            """Attribute access explodes inside validate_function."""

            def __getattr__(self, name):
                raise RuntimeError("injected poison pill")

        overrides = {"poison_me": _PoisonOptions()}
        parent, child = mp.Pipe(duplex=True)
        for index, name in enumerate(["ok_one", "poison_me", "ok_two"]):
            parent.send(("task", index, name))
        parent.send(("stop",))
        # Drive the worker loop in-process: the queued pipe messages play
        # the dispatcher's role, so the monkeypatched core stays visible.
        _worker_main(child, str(module), options, overrides, None, None)
        outcomes = {}
        while parent.poll(0):
            _, index, outcome = parent.recv()
            outcomes[index] = outcome
        assert outcomes[0].category == Category.SUCCEEDED
        assert outcomes[1].category == Category.OTHER
        assert "injected poison pill" in outcomes[1].detail
        assert outcomes[2].category == Category.SUCCEEDED
        assert core.resets == 1  # the pill, and nothing else, reset it
        assert core.scope == "campaign"
        # The core kept serving after the reset: ok_two ran through it.
        assert outcomes[2].solver_stats.incremental_checks > 0
        assert outcomes[2].solver_stats.session_scope == "campaign"

    def test_campaign_scope_matches_function_scope_verdicts(self):
        import dataclasses

        corpus = gcc_like_corpus(scale=6, seed=5)
        campaign = self._campaign_options()
        function_scoped = dataclasses.replace(
            campaign,
            keq=dataclasses.replace(
                campaign.keq, session_scope="function"
            ),
        )
        campaign_result = run_corpus(corpus, campaign, dedup=False)
        function_result = run_corpus(corpus, function_scoped, dedup=False)
        assert _outcome_keys(campaign_result) == _outcome_keys(
            function_result
        )
        assert campaign_result.solver_stats.session_scope == "campaign"


class TestParallelCorpusAndCache:
    def test_run_corpus_parallel_matches_sequential(self):
        corpus = gcc_like_corpus(scale=6, seed=5)
        base = TvOptions()
        sequential = run_corpus(corpus, base)
        parallel = run_corpus(corpus, base, jobs=2)
        assert _outcome_keys(parallel) == _outcome_keys(sequential)

    def test_parallel_workers_share_persistent_cache(self, tmp_path):
        corpus = gcc_like_corpus(scale=6, seed=5)
        base = TvOptions()
        directory = str(tmp_path / "qc")
        cold = run_corpus(corpus, base, jobs=2, cache_dir=directory)
        warm = run_corpus(corpus, base, jobs=2, cache_dir=directory)
        assert _outcome_keys(warm) == _outcome_keys(cold)
        assert warm.solver_stats.cache_hits > 0
        assert (
            warm.solver_stats.cache_hits >= cold.solver_stats.cache_hits
        )


class TestAffinityAwareSizing:
    """Pools are sized by the scheduler affinity mask, not the machine's
    core count: ``os.cpu_count() or 1`` over-reports under container
    cpusets (the old bug), so the clamp goes through
    repro.util.available_cpus."""

    def test_clamp_respects_affinity_mask_not_cpu_count(
        self, monkeypatch, caplog
    ):
        import logging

        import repro.tv.parallel as parallel_module
        import repro.util as util_module

        # A 64-core machine whose cpuset grants this process one core.
        monkeypatch.setattr(util_module.os, "cpu_count", lambda: 64)
        monkeypatch.setattr(
            util_module.os,
            "sched_getaffinity",
            lambda pid: {0},
            raising=False,
        )
        corpus = gcc_like_corpus(scale=4, seed=5)
        module = corpus.build_module()
        with caplog.at_level(logging.INFO, logger="repro.tv.parallel"):
            run_batch_parallel(module, TvOptions(), jobs=4)
        assert any(
            "clamping jobs=4 to cpu_count=1" in r.getMessage()
            for r in caplog.records
        )
