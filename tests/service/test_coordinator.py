"""Coordinator protocol semantics, driven through ``handle()`` directly.

No sockets, no worker subprocesses: a prepared campaign plus synthetic
result payloads exercise lease grants, first-write-wins acceptance,
poison-pill quarantine, exactly-once lease-expiry re-queue, and graceful
goodbye — the machinery the loopback tests then validate end to end.
"""

import time

import pytest

from repro.campaign import CampaignConfig, load_state, read_events
from repro.campaign.journal import Journal, outcome_to_json
from repro.campaign.supervisor import prepare_campaign
from repro.service.coordinator import Coordinator, ServiceConfig
from repro.smt import DEFAULT_PROBE_CONFLICTS
from repro.tv.driver import Category, TvOutcome


@pytest.fixture
def coordinator(tmp_path):
    directory = str(tmp_path / "camp")
    prepared = prepare_campaign(
        directory,
        CampaignConfig(
            scale=4,
            seed=7,
            shards=2,
            jobs=1,
            wall_budget=20.0,
            backoff_seconds=0.05,
        ),
    )
    journal = Journal(directory)
    coord = Coordinator(
        prepared,
        journal,
        ServiceConfig(lease_seconds=30.0, wait_seconds=0.01),
    )
    yield coord
    journal.close()


def hello(coord, worker_id="w1"):
    return coord.handle(
        {"type": "hello", "worker_id": worker_id, "host": "testhost"}
    )


def lease(coord, worker_id="w1"):
    return coord.handle({"type": "lease", "worker_id": worker_id})


def result_for(coord, grant, worker_id="w1", category=Category.SUCCEEDED):
    return coord.handle(
        {
            "type": "result",
            "worker_id": worker_id,
            "unit": grant["unit"],
            "lease_id": grant["lease_id"],
            "attempt": grant["attempt"],
            "shard": grant["shard"],
            "outcome": outcome_to_json(TvOutcome(grant["unit"], category)),
        }
    )


def drain(coord, worker_id="w1"):
    """Lease+complete until the coordinator says drain; returns grants."""
    grants = []
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        reply = lease(coord, worker_id)
        if reply["type"] == "drain":
            return grants
        if reply["type"] == "wait":
            time.sleep(reply["seconds"])
            continue
        grants.append(reply)
        result_for(coord, reply, worker_id)
    raise AssertionError("coordinator never drained")


class TestHello:
    def test_welcome_carries_the_campaign(self, coordinator):
        welcome = hello(coordinator)
        assert welcome["type"] == "welcome"
        assert "define" in welcome["module_text"]
        assert welcome["lease_seconds"] == 30.0
        assert welcome["cache_dir"] == coordinator.prepared.manifest["cache_dir"]
        assert welcome["validate"] is None
        assert isinstance(welcome["imprecise"], list)
        assert welcome["portfolio_mode"] == "interleave"
        assert welcome["portfolio_probe"] == DEFAULT_PROBE_CONFLICTS

    def test_unknown_type_is_an_error(self, coordinator):
        reply = coordinator.handle({"type": "frobnicate"})
        assert reply["type"] == "error"


class TestLeaseAndResult:
    def test_full_drain_completes_the_campaign(self, coordinator):
        hello(coordinator)
        grants = drain(coordinator)
        run_names = set(coordinator.prepared.manifest["run_names"])
        assert {g["unit"] for g in grants} == run_names
        assert len(grants) == len(run_names)  # each unit granted once
        assert coordinator.finished
        state = load_state(coordinator.prepared.directory)
        assert state.completed == run_names

    def test_start_events_carry_worker_tags(self, coordinator):
        hello(coordinator)
        grant = lease(coordinator)
        starts = [
            e
            for e in read_events(coordinator.prepared.directory)
            if e["event"] == "start"
        ]
        assert len(starts) == 1
        assert starts[0]["fn"] == grant["unit"]
        assert starts[0]["worker"] == "w1"
        assert starts[0]["host"] == "testhost"

    def test_unit_not_double_leased(self, coordinator):
        hello(coordinator, "w1")
        hello(coordinator, "w2")
        granted = set()
        while True:
            reply = lease(coordinator, "w1")
            if reply["type"] != "unit":
                break
            assert reply["unit"] not in granted
            granted.add(reply["unit"])
        # Queues are empty but units are unresolved: the second worker
        # must wait, not receive an already-leased unit.
        assert lease(coordinator, "w2")["type"] == "wait"

    def test_duplicate_result_dropped_first_write_wins(self, coordinator):
        hello(coordinator)
        grant = lease(coordinator)
        first = result_for(coordinator, grant)
        assert first == {"type": "ack", "duplicate": False}
        second = result_for(coordinator, grant, category=Category.OTHER)
        assert second == {"type": "ack", "duplicate": True}
        state = load_state(coordinator.prepared.directory)
        assert state.duplicates == 1
        # The accepted outcome is the first one.
        assert state.outcome(grant["unit"]).category == Category.SUCCEEDED
        events = read_events(coordinator.prepared.directory)
        assert [e["event"] for e in events if e["fn"] == grant["unit"]] == [
            "start",
            "done",
            "duplicate",
        ]


class TestWorkerDeath:
    def death(self, coord, grant, worker_id="w1"):
        return coord.handle(
            {
                "type": "worker_death",
                "worker_id": worker_id,
                "unit": grant["unit"],
                "lease_id": grant["lease_id"],
                "attempt": grant["attempt"],
                "detail": "worker process died (exitcode=-9)",
            }
        )

    def test_death_requeues_with_backoff(self, coordinator):
        hello(coordinator)
        grant = lease(coordinator)
        reply = self.death(coordinator, grant)
        assert reply == {"type": "ack", "quarantined": False}
        events = read_events(coordinator.prepared.directory)
        requeues = [e for e in events if e["event"] == "requeue"]
        assert len(requeues) == 1
        assert requeues[0]["fn"] == grant["unit"]
        assert requeues[0]["death"] is True
        assert requeues[0]["delay"] == pytest.approx(0.05)
        # After the backoff the unit is leased again with attempt+1.
        time.sleep(0.1)
        regrants = {}
        while True:
            reply = lease(coordinator)
            if reply["type"] != "unit":
                break
            regrants[reply["unit"]] = reply
        assert regrants[grant["unit"]]["attempt"] == grant["attempt"] + 1

    def test_second_death_quarantines(self, coordinator):
        hello(coordinator)
        grant = lease(coordinator)
        self.death(coordinator, grant)
        time.sleep(0.1)
        while True:
            regrant = lease(coordinator)
            assert regrant["type"] == "unit"
            if regrant["unit"] == grant["unit"]:
                break
            result_for(coordinator, regrant)
        reply = self.death(coordinator, regrant)
        assert reply == {"type": "ack", "quarantined": True}
        drain(coordinator)
        state = load_state(coordinator.prepared.directory)
        assert grant["unit"] in state.quarantined
        # Only the retried death shows as a death-flagged requeue; the
        # final one is folded into the quarantine event (matching the
        # single-host supervisor's journal shape).
        assert state.worker_deaths == 1
        assert state.ledger(grant["unit"]).requeues == 1


class TestLeaseExpiry:
    @pytest.fixture
    def coordinator(self, tmp_path):
        directory = str(tmp_path / "camp")
        prepared = prepare_campaign(
            directory,
            CampaignConfig(scale=4, seed=7, shards=2, backoff_seconds=0.05),
        )
        journal = Journal(directory)
        coord = Coordinator(
            prepared,
            journal,
            ServiceConfig(lease_seconds=0.05, wait_seconds=0.01),
        )
        yield coord
        journal.close()

    def test_expired_lease_requeued_exactly_once(self, coordinator):
        hello(coordinator)
        grant = lease(coordinator)
        time.sleep(0.06)
        assert coordinator.sweep() == [grant["unit"]]
        assert coordinator.sweep() == []  # exactly once
        requeues = [
            e
            for e in read_events(coordinator.prepared.directory)
            if e["event"] == "requeue"
        ]
        assert len(requeues) == 1
        assert "lease expired" in requeues[0]["reason"]
        assert requeues[0]["death"] is False  # unobserved: no kill charged
        regrant = self.lease_until(coordinator, grant["unit"], "w2")
        assert regrant["attempt"] == grant["attempt"] + 1

    @staticmethod
    def lease_until(coord, unit, worker_id):
        """Lease (without completing) until ``unit`` is granted; other
        pending units may precede the re-queued one."""
        while True:
            reply = lease(coord, worker_id)
            assert reply["type"] == "unit"
            if reply["unit"] == unit:
                return reply

    def test_late_result_after_expiry_is_duplicate(self, coordinator):
        hello(coordinator, "w1")
        grant = lease(coordinator, "w1")
        time.sleep(0.06)
        coordinator.sweep()
        regrant = self.lease_until(coordinator, grant["unit"], "w2")
        accepted = result_for(coordinator, regrant, "w2")
        assert accepted["duplicate"] is False
        # The presumed-dead worker's answer surfaces after the re-run.
        late = result_for(coordinator, grant, "w1")
        assert late["duplicate"] is True
        state = load_state(coordinator.prepared.directory)
        assert state.ledger(grant["unit"]).duplicates == 1

    def test_heartbeat_keeps_the_lease_alive(self, coordinator):
        hello(coordinator)
        grant = lease(coordinator)
        for _ in range(4):
            time.sleep(0.03)
            coordinator.handle({"type": "heartbeat", "worker_id": "w1"})
            assert coordinator.sweep() == []
        assert result_for(coordinator, grant)["duplicate"] is False


class TestGoodbye:
    def test_goodbye_requeues_in_flight_immediately(self, coordinator):
        hello(coordinator)
        grant = lease(coordinator)
        coordinator.handle({"type": "goodbye", "worker_id": "w1"})
        requeues = [
            e
            for e in read_events(coordinator.prepared.directory)
            if e["event"] == "requeue"
        ]
        assert len(requeues) == 1
        assert "drained mid-lease" in requeues[0]["reason"]
        regrants = set()
        while True:
            reply = lease(coordinator, "w2")
            if reply["type"] != "unit":
                break
            regrants.add(reply["unit"])
        assert grant["unit"] in regrants


class TestStatus:
    def test_status_renders_progress_and_workers(self, coordinator):
        hello(coordinator)
        grant = lease(coordinator)
        result_for(coordinator, grant)
        reply = coordinator.handle({"type": "status"})
        assert reply["type"] == "status"
        assert reply["complete"] is False
        assert "campaign status" in reply["render"]
        assert "failure classes:" in reply["render"]
        assert "retries:" in reply["render"]
        assert "worker w1 (testhost, active)" in reply["render"]
        assert "completed=1" in reply["render"]
