"""Framing-layer tests: roundtrips, torn frames, EOF vs corruption."""

import socket
import struct
import threading

import pytest

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    MessageChannel,
    ProtocolError,
    parse_address,
    recv_message,
    send_message,
)


def pair():
    return socket.socketpair()


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.1.2.3:7341") == ("10.1.2.3", 7341)

    def test_rpartition_takes_last_colon(self):
        # Not full IPv6 support, but a colon-bearing host must not eat
        # the port.
        assert parse_address("::1:7341") == ("::1", 7341)

    @pytest.mark.parametrize("bad", ["7341", ":7341", "host:", "host:nan"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestFraming:
    def test_roundtrip(self):
        a, b = pair()
        message = {"type": "result", "unit": "fn_0", "outcome": {"x": [1, 2]}}
        send_message(a, message)
        assert recv_message(b) == message
        a.close()
        b.close()

    def test_multiple_frames_stay_separate(self):
        a, b = pair()
        for i in range(3):
            send_message(a, {"type": "n", "i": i})
        for i in range(3):
            assert recv_message(b) == {"type": "n", "i": i}
        a.close()
        b.close()

    def test_clean_eof_is_none(self):
        a, b = pair()
        a.close()
        assert recv_message(b) is None
        b.close()

    def test_eof_mid_frame_raises(self):
        a, b = pair()
        a.sendall(struct.pack("!I", 100) + b'{"type":')  # truncated payload
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_message(b)
        b.close()

    def test_oversized_header_rejected(self):
        a, b = pair()
        a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_message(b)
        a.close()
        b.close()

    def test_non_object_payload_rejected(self):
        a, b = pair()
        payload = b"[1,2,3]"
        a.sendall(struct.pack("!I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="type"):
            recv_message(b)
        a.close()
        b.close()

    def test_undecodable_payload_rejected(self):
        a, b = pair()
        payload = b"\xff\xfe not json"
        a.sendall(struct.pack("!I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="undecodable"):
            recv_message(b)
        a.close()
        b.close()


class TestMessageChannel:
    def _echo_server(self, sock, replies):
        try:
            while True:
                message = recv_message(sock)
                if message is None:
                    return
                send_message(sock, replies(message))
        except (ProtocolError, OSError):
            return  # test tore the socket down mid-conversation

    def test_request_response(self):
        a, b = pair()
        thread = threading.Thread(
            target=self._echo_server,
            args=(b, lambda m: {"type": "ack", "echo": m["type"]}),
            daemon=True,
        )
        thread.start()
        channel = MessageChannel(a)
        assert channel.request({"type": "ping"}) == {
            "type": "ack",
            "echo": "ping",
        }
        channel.close()
        b.close()

    def test_error_reply_raises(self):
        a, b = pair()
        thread = threading.Thread(
            target=self._echo_server,
            args=(b, lambda m: {"type": "error", "detail": "boom"}),
            daemon=True,
        )
        thread.start()
        channel = MessageChannel(a)
        with pytest.raises(ProtocolError, match="boom"):
            channel.request({"type": "ping"})
        channel.close()
        b.close()

    def test_peer_close_raises(self):
        a, b = pair()
        b.close()
        channel = MessageChannel(a)
        with pytest.raises((ProtocolError, OSError)):
            channel.request({"type": "ping"})
        channel.close()

    def test_concurrent_requests_stay_paired(self):
        a, b = pair()
        thread = threading.Thread(
            target=self._echo_server,
            args=(b, lambda m: {"type": "ack", "n": m["n"]}),
            daemon=True,
        )
        thread.start()
        channel = MessageChannel(a)
        mismatches = []

        def hammer(n):
            for _ in range(50):
                reply = channel.request({"type": "req", "n": n})
                if reply["n"] != n:
                    mismatches.append((n, reply))

        threads = [
            threading.Thread(target=hammer, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert mismatches == []
        channel.close()
        b.close()


class TestRecvTimeout:
    """A silent peer (no bytes, no FIN) must not block a request forever."""

    def test_silent_peer_raises_protocol_timeout(self):
        from repro.service.protocol import ProtocolTimeout

        a, b = pair()
        a.settimeout(0.1)
        channel = MessageChannel(a)
        with pytest.raises(ProtocolTimeout):
            channel.request({"type": "ping"})
        # The channel closed itself: a half-read frame may be in flight,
        # so the socket cannot be reused without desyncing the framing.
        assert a.fileno() == -1
        b.close()

    def test_protocol_timeout_is_a_protocol_error(self):
        from repro.service.protocol import ProtocolTimeout

        assert issubclass(ProtocolTimeout, ProtocolError)

    def test_connect_applies_recv_timeout(self):
        from repro.service.protocol import connect

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()
        channel = connect(f"{host}:{port}", retries=1, recv_timeout=0.25)
        assert channel.sock.gettimeout() == 0.25
        channel.close()
        server.close()

    def test_connect_default_blocks_forever(self):
        from repro.service.protocol import connect

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()
        channel = connect(f"{host}:{port}", retries=1)
        assert channel.sock.gettimeout() is None
        channel.close()
        server.close()
