"""Lease-table invariants with injected clocks (no threads, no sockets)."""

import pytest

from repro.service.leases import LeaseTable


def table(duration=10.0):
    return LeaseTable(duration)


class TestGrant:
    def test_grant_and_lookup(self):
        t = table()
        lease = t.grant("fn_a", "w1", attempt=1, now=100.0)
        assert lease.unit == "fn_a"
        assert lease.expires_at == 110.0
        assert t.lease_of("fn_a") is lease
        assert len(t) == 1

    def test_double_grant_refused(self):
        t = table()
        t.grant("fn_a", "w1", attempt=1, now=0.0)
        with pytest.raises(ValueError, match="already leased"):
            t.grant("fn_a", "w2", attempt=2, now=1.0)

    def test_nonpositive_duration_refused(self):
        with pytest.raises(ValueError):
            LeaseTable(0.0)

    def test_lease_ids_are_unique_and_ordered(self):
        t = table()
        ids = [
            t.grant(f"fn_{i}", "w1", attempt=1, now=0.0).lease_id
            for i in range(3)
        ]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3


class TestRenew:
    def test_heartbeat_renews_only_that_worker(self):
        t = table(duration=10.0)
        mine = t.grant("fn_a", "w1", attempt=1, now=0.0)
        other = t.grant("fn_b", "w2", attempt=1, now=0.0)
        assert t.renew_worker("w1", now=5.0) == 1
        assert mine.expires_at == 15.0
        assert other.expires_at == 10.0

    def test_renew_unknown_worker_is_zero(self):
        assert table().renew_worker("ghost", now=0.0) == 0


class TestExpiry:
    def test_expire_pops_exactly_once(self):
        t = table(duration=10.0)
        t.grant("fn_a", "w1", attempt=3, now=0.0)
        assert t.expire(now=9.9) == []
        dead = t.expire(now=10.0)
        assert [lease.unit for lease in dead] == ["fn_a"]
        assert dead[0].attempt == 3
        # The exactly-once guarantee: a second sweep finds nothing.
        assert t.expire(now=100.0) == []
        assert t.lease_of("fn_a") is None
        assert t.expired == 1

    def test_renewed_lease_survives_the_sweep(self):
        t = table(duration=10.0)
        t.grant("fn_a", "w1", attempt=1, now=0.0)
        t.renew_worker("w1", now=8.0)
        assert t.expire(now=12.0) == []
        assert t.lease_of("fn_a") is not None


class TestRelease:
    def test_release_settles(self):
        t = table()
        lease = t.grant("fn_a", "w1", attempt=1, now=0.0)
        assert t.release(lease.lease_id) is lease
        assert t.lease_of("fn_a") is None
        # Releasing again (duplicate result after expiry) reads as stale.
        assert t.release(lease.lease_id) is None

    def test_release_after_expiry_is_stale(self):
        t = table(duration=5.0)
        lease = t.grant("fn_a", "w1", attempt=1, now=0.0)
        t.expire(now=6.0)
        assert t.release(lease.lease_id) is None

    def test_release_worker_returns_all_of_its_leases(self):
        t = table()
        t.grant("fn_a", "w1", attempt=1, now=0.0)
        t.grant("fn_b", "w2", attempt=1, now=0.0)
        t.grant("fn_c", "w1", attempt=1, now=0.0)
        released = {lease.unit for lease in t.release_worker("w1")}
        assert released == {"fn_a", "fn_c"}
        assert len(t) == 1
        assert t.lease_of("fn_b") is not None

    def test_outstanding_sorted_by_id(self):
        t = table()
        t.grant("fn_b", "w1", attempt=1, now=0.0)
        t.grant("fn_a", "w1", attempt=1, now=0.0)
        assert [l.unit for l in t.outstanding()] == ["fn_b", "fn_a"]


class TestDeterministicReturnOrder:
    """expire() and release_worker() return lease_id order — the same
    order outstanding() reports — so the coordinator's re-queue and
    journal line order never depend on dict insertion history."""

    def _permuted_tables(self):
        """Same leases, granted in different orders (different insertion
        histories), all expiring together."""
        units = ["fn_c", "fn_a", "fn_b", "fn_d"]
        tables = []
        for rotation in range(len(units)):
            t = table(duration=5.0)
            order = units[rotation:] + units[:rotation]
            for unit in order:
                t.grant(unit, "w1", attempt=1, now=0.0)
            tables.append(t)
        return tables

    def test_expire_order_invariant_under_grant_permutation(self):
        orders = []
        for t in self._permuted_tables():
            expected = [lease.lease_id for lease in t.outstanding()]
            dead = t.expire(now=100.0)
            assert [lease.lease_id for lease in dead] == expected
            orders.append([lease.lease_id for lease in dead])
        # Every permutation re-queues in grant (lease_id) order.
        assert all(order == sorted(order) for order in orders)

    def test_release_worker_order_matches_outstanding(self):
        t = table(duration=5.0)
        # Interleave two workers so w1's leases are non-contiguous in
        # insertion order.
        t.grant("fn_x", "w1", attempt=1, now=0.0)
        t.grant("fn_y", "w2", attempt=1, now=0.0)
        t.grant("fn_z", "w1", attempt=1, now=0.0)
        t.grant("fn_w", "w2", attempt=1, now=0.0)
        t.grant("fn_v", "w1", attempt=1, now=0.0)
        expected = [
            lease.lease_id
            for lease in t.outstanding()
            if lease.worker_id == "w1"
        ]
        released = t.release_worker("w1")
        assert [lease.lease_id for lease in released] == expected
        assert [lease.lease_id for lease in released] == sorted(
            lease.lease_id for lease in released
        )

    def test_release_then_regrant_keeps_order_deterministic(self):
        t = table(duration=5.0)
        first = t.grant("fn_a", "w1", attempt=1, now=0.0)
        t.grant("fn_b", "w1", attempt=1, now=0.0)
        # Release and regrant fn_a: its new lease_id sorts *after* fn_b's,
        # so dict insertion order (fn_a first again) would be wrong.
        t.release(first.lease_id)
        t.grant("fn_a", "w1", attempt=2, now=0.0)
        dead = t.expire(now=100.0)
        assert [lease.unit for lease in dead] == ["fn_b", "fn_a"]
