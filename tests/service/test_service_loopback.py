"""Distributed campaigns end to end over loopback TCP.

The acceptance bar for the service: a campaign with two workers where one
is SIGKILLed mid-lease (whole client, not just a validation subprocess)
still completes with every function validated exactly once and renders a
report byte-identical to a single-host run — and a halted single-host
directory can be *finished* by the service, because both drivers share
the manifest, journal, and merger.
"""

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignInterrupted,
    load_state,
    read_events,
    run_campaign,
)
from repro.campaign.hooks import KILL_DIR_ENV, KILL_ONCE_ENV, sigkill_injector
from repro.service import (
    ServiceConfig,
    ServiceWorker,
    WorkerConfig,
    serve_campaign,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
VICTIM = "fn_succeeded_0000"


def config(**overrides):
    settings = dict(
        scale=8,
        seed=7,
        shards=2,
        jobs=2,
        wall_budget=30.0,
        backoff_seconds=0.05,
    )
    settings.update(overrides)
    return CampaignConfig(**settings)


class CoordinatorThread:
    """serve_campaign on a thread; exposes the bound address."""

    def __init__(self, directory, campaign_config, service_config):
        self.address = None
        self.report = None
        self.error = None
        self._ready = threading.Event()

        def on_bound(bound):
            self.address = f"{bound[0]}:{bound[1]}"
            self._ready.set()

        def run():
            try:
                self.report = serve_campaign(
                    directory, campaign_config, service_config, on_bound=on_bound
                )
            except BaseException as error:  # surfaced in join()
                self.error = error
                self._ready.set()

        self.thread = threading.Thread(target=run, daemon=True)

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(30), "coordinator never bound"
        if self.error is not None:
            raise self.error
        return self

    def __exit__(self, *exc_info):
        self.thread.join(timeout=120)
        assert not self.thread.is_alive(), "coordinator failed to finish"
        if self.error is not None and exc_info[0] is None:
            raise self.error

    def join(self):
        self.__exit__(None, None, None)
        return self.report


def run_workers(address, count):
    summaries = []

    def work(index):
        worker = ServiceWorker(
            WorkerConfig(connect=address, worker_id=f"w{index}", jobs=1)
        )
        summaries.append(worker.run())

    threads = [
        threading.Thread(target=work, args=(i,), daemon=True)
        for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=240)
    assert all(not t.is_alive() for t in threads)
    return summaries


def worker_argv(address, worker_id, extra=()):
    return [
        sys.executable,
        "-m",
        "repro",
        "service",
        "worker",
        "--connect",
        address,
        "--worker-id",
        worker_id,
        *extra,
    ]


def worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def dones_by_function(directory):
    counts = {}
    for event in read_events(directory):
        if event["event"] == "done":
            counts[event["fn"]] = counts.get(event["fn"], 0) + 1
    return counts


class TestLoopbackService:
    def test_two_workers_match_single_host_baseline(self, tmp_path):
        baseline = run_campaign(str(tmp_path / "base"), config())

        with CoordinatorThread(
            str(tmp_path / "svc"),
            config(),
            ServiceConfig(lease_seconds=60.0, heartbeat_seconds=1.0),
        ) as coordinator:
            summaries = run_workers(coordinator.address, 2)
        report = coordinator.join()

        assert report.complete
        assert all(s.drained_clean for s in summaries)
        # Both workers participated and nothing ran twice.
        dones = dones_by_function(str(tmp_path / "svc"))
        assert sum(s.completed for s in summaries) == len(dones)
        assert all(n == 1 for n in dones.values())
        assert report.summary(include_timing=False) == baseline.summary(
            include_timing=False
        )
        assert report.function_table() == baseline.function_table()

    def test_sigkilled_worker_mid_lease_recovers(self, tmp_path):
        """One worker is armed to SIGKILL its whole process the first time
        it validates the victim — no goodbye, no heartbeat, a dead
        machine.  The lease expires, the unit is re-queued exactly once,
        and a second worker drains the campaign to the byte-identical
        report."""
        baseline = run_campaign(str(tmp_path / "base"), config())
        svc_dir = str(tmp_path / "svc")
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()

        with CoordinatorThread(
            svc_dir,
            config(),
            ServiceConfig(lease_seconds=2.0, heartbeat_seconds=0.5),
        ) as coordinator:
            # The armed worker runs alone first so it (and nobody else)
            # leases the victim; its SIGKILL leaves the lease dangling.
            armed = subprocess.run(
                worker_argv(
                    coordinator.address,
                    "w-armed",
                    [
                        "--inject-kill-worker-once",
                        VICTIM,
                        "--kill-marker-dir",
                        str(marker_dir),
                    ],
                ),
                env=worker_env(),
                cwd=str(REPO_ROOT),
                capture_output=True,
                timeout=240,
            )
            assert armed.returncode == -9, armed.stderr.decode()

            clean = subprocess.run(
                worker_argv(coordinator.address, "w-clean"),
                env=worker_env(),
                cwd=str(REPO_ROOT),
                capture_output=True,
                timeout=240,
            )
            assert clean.returncode == 0, clean.stderr.decode()
        report = coordinator.join()

        assert report.complete
        assert report.quarantined == {}
        requeues = [
            e for e in read_events(svc_dir) if e["event"] == "requeue"
        ]
        assert len(requeues) == 1
        assert requeues[0]["fn"] == VICTIM
        assert "lease expired" in requeues[0]["reason"]
        assert requeues[0]["worker"] == "w-armed"
        # Every function validated exactly once despite the lost machine.
        assert all(n == 1 for n in dones_by_function(svc_dir).values())
        state = load_state(svc_dir)
        assert state.retries == 1
        assert state.worker_deaths == 0  # unobserved death: no kill charged
        assert report.summary(include_timing=False) == baseline.summary(
            include_timing=False
        )
        assert report.function_table() == baseline.function_table()

    def test_serve_campaign_resumes_halted_directory(
        self, tmp_path, monkeypatch
    ):
        """A single-host campaign halted mid-flight is finished by the
        service (auto-resume): the same directory, journal, and report."""
        baseline = run_campaign(str(tmp_path / "base"), config())

        crash_dir = str(tmp_path / "crash")
        monkeypatch.setenv(KILL_ONCE_ENV, VICTIM)
        monkeypatch.setenv(KILL_DIR_ENV, crash_dir)
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                crash_dir,
                config(halt_on_worker_death=True, validate=sigkill_injector),
            )
        orphans = load_state(crash_dir).orphans()
        assert VICTIM in orphans

        with CoordinatorThread(
            crash_dir, config(), ServiceConfig(heartbeat_seconds=1.0)
        ) as coordinator:
            summaries = run_workers(coordinator.address, 1)
        report = coordinator.join()

        assert report.complete
        assert report.quarantined == {}
        assert summaries[0].drained_clean
        # The halt's orphans were re-queued exactly once (by the resume
        # recovery events, not by lease machinery).
        for orphan in orphans:
            requeues = [
                e
                for e in read_events(crash_dir)
                if e["event"] == "requeue" and e["fn"] == orphan
            ]
            assert len(requeues) == 1
        assert report.summary(include_timing=False) == baseline.summary(
            include_timing=False
        )
        assert report.function_table() == baseline.function_table()
