"""A coordinator that freezes (no bytes, no FIN) must not hang workers.

The failure mode: the coordinator host powers off or is partitioned after
the TCP handshake — the kernel keeps the connection "established", no RST
arrives, and a worker blocking in ``recv`` with no timeout waits forever
instead of draining.  The fix is a configurable receive timeout plus a
bounded reconnect-and-resend retry; when the retries are exhausted the
worker reports ``coordinator lost`` and exits nonzero.
"""

import logging
import socket
import subprocess
import sys
import threading
from pathlib import Path

from repro.service import ServiceWorker, WorkerConfig
from repro.service.protocol import recv_message, send_message

REPO_ROOT = Path(__file__).resolve().parents[2]


class FrozenCoordinator:
    """Replies to ``hello`` with a valid welcome, then goes silent.

    Connections stay open and incoming frames are read and dropped — the
    exact symptom of a partitioned-but-established TCP peer.  Reconnects
    are accepted (and equally ignored), so the worker's bounded
    reconnect-and-resend retry is genuinely exercised.
    """

    def __init__(self):
        self.server = socket.socket()
        self.server.bind(("127.0.0.1", 0))
        self.server.listen(8)
        host, port = self.server.getsockname()
        self.address = f"{host}:{port}"
        self.connections = 0
        self._threads = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )

    def __enter__(self):
        self._accept_thread.start()
        return self

    def __exit__(self, *exc_info):
        try:
            self.server.close()
        except OSError:
            pass

    def _accept_loop(self):
        while True:
            try:
                conn, _ = self.server.accept()
            except OSError:
                return
            self.connections += 1
            thread = threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn):
        try:
            while True:
                message = recv_message(conn)
                if message is None:
                    return
                if message.get("type") == "hello":
                    send_message(
                        conn,
                        {
                            "type": "welcome",
                            "module_text": "",
                            "heartbeat_seconds": 60.0,
                            "wait_seconds": 0.05,
                        },
                    )
                # Any other message: read, drop, never reply.
        except Exception:
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass


class TestFrozenCoordinator:
    def test_worker_reports_coordinator_lost_and_stops(self, caplog):
        with FrozenCoordinator() as coordinator:
            worker = ServiceWorker(
                WorkerConfig(
                    connect=coordinator.address,
                    worker_id="w-frozen",
                    jobs=1,
                    recv_timeout=0.2,
                    recv_retries=1,
                )
            )
            with caplog.at_level(logging.WARNING, logger="repro.service"):
                summary = worker.run()
            # Not a drain: the coordinator was lost.
            assert summary.drained_clean is False
            assert summary.leased == 0
            # Bounded retry: the initial dial plus one reconnect.
            assert coordinator.connections == 2
        assert any(
            "coordinator lost" in record.message for record in caplog.records
        )
        assert any(
            "coordinator silent" in record.message
            for record in caplog.records
        )

    def test_cli_worker_exits_nonzero(self):
        with FrozenCoordinator() as coordinator:
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "service",
                    "worker",
                    "--connect",
                    coordinator.address,
                    "--worker-id",
                    "w-cli",
                    "--recv-timeout",
                    "0.2",
                    "--recv-retries",
                    "1",
                ],
                env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
                capture_output=True,
                text=True,
                timeout=120,
            )
        assert proc.returncode == 1, proc.stderr
        assert "drained-clean=False" in proc.stdout + proc.stderr
