"""Tests for the IMP textual front end."""

import pytest

from repro.imp import ImpSemantics, StackSemantics, compile_program, generate_imp_sync_points, imp_entry_state
from repro.imp.lang import Assign, BinExpr, If, Return, While
from repro.imp.parser import ImpParseError, parse_imp
from repro.keq import Keq, Verdict
from repro.semantics.run import run_concrete
from repro.smt import t

SUM = """
# classic triangular sum
def sum(n) {
    i = 0; acc = 0;
    while main (i < n) {
        acc = acc + i;
        i = i + 1;
    }
    return acc;
}
"""


class TestParser:
    def test_parses_structure(self):
        program = parse_imp(SUM)
        assert program.name == "sum"
        assert program.parameters == ("n",)
        kinds = [type(s) for s in program.body]
        assert kinds == [Assign, Assign, While, Return]
        assert program.loop_headers  # labelled loop recorded

    def test_precedence(self):
        program = parse_imp("def f(a, b) { return a + b * 2; }")
        (ret,) = program.body
        assert isinstance(ret.value, BinExpr) and ret.value.op == "+"
        assert isinstance(ret.value.rhs, BinExpr) and ret.value.rhs.op == "*"

    def test_parentheses(self):
        program = parse_imp("def f(a, b) { return (a + b) * 2; }")
        (ret,) = program.body
        assert ret.value.op == "*"

    def test_if_else(self):
        program = parse_imp(
            "def f(x) { if (x < 0) { return 0 - x; } else { return x; } }"
        )
        (branch,) = program.body
        assert isinstance(branch, If)
        assert branch.then_body and branch.else_body

    def test_unlabelled_while(self):
        program = parse_imp("def f(n) { while (n < 10) { n = n + 1; } return n; }")
        (loop, _) = program.body
        assert isinstance(loop, While) and loop.label == ""

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ImpParseError):
            parse_imp("def f(x) { return x }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ImpParseError):
            parse_imp("def f(x) { return x; } garbage")

    def test_keyword_as_name_rejected(self):
        with pytest.raises(ImpParseError):
            parse_imp("def while(x) { return x; }")


class TestParsedProgramsRun:
    def test_concrete_execution(self):
        program = parse_imp(SUM)
        semantics = ImpSemantics({"sum": program})
        state = imp_entry_state(program).bind("n", t.bv_const(5, 32))
        final = run_concrete(semantics, state)
        assert final.returned.value == 10

    def test_parsed_program_validates_against_stack_machine(self):
        program = parse_imp(SUM)
        compiled = compile_program(program)
        points = generate_imp_sync_points(program, compiled)
        keq = Keq(
            ImpSemantics({"sum": program}), StackSemantics({"sum": compiled})
        )
        assert keq.check_equivalence(points).verdict is Verdict.VALIDATED
