"""Tests for the IMP -> LLVM IR compiler and cross-paradigm validation."""

import pytest

from repro.imp import (
    Assign,
    BinExpr,
    Const,
    If,
    ImpProgram,
    ImpSemantics,
    Return,
    Var,
    While,
    imp_entry_state,
)
from repro.imp.to_llvm import (
    compile_imp_to_llvm,
    generate_cross_paradigm_sync_points,
)
from repro.keq import Keq, Verdict, default_acceptability
from repro.llvm import ir
from repro.llvm.semantics import LlvmSemantics, entry_state
from repro.llvm.verify import verify_function
from repro.semantics.run import run_concrete
from repro.smt import t


def sum_program() -> ImpProgram:
    return ImpProgram(
        name="sum",
        parameters=("n",),
        body=(
            Assign("i", Const(0)),
            Assign("acc", Const(0)),
            While(
                BinExpr("<", Var("i"), Var("n")),
                (
                    Assign("acc", BinExpr("+", Var("acc"), Var("i"))),
                    Assign("i", BinExpr("+", Var("i"), Const(1))),
                ),
                label="main",
            ),
            Return(Var("acc")),
        ),
    )


def compiled(program):
    module = ir.Module()
    function, slots = compile_imp_to_llvm(program, module)
    return module, function, slots


class TestCompiler:
    def test_output_verifies(self):
        _, function, _ = compiled(sum_program())
        verify_function(function)

    def test_every_variable_gets_a_slot(self):
        _, function, slots = compiled(sum_program())
        assert set(slots) == {"n", "i", "acc"}
        allocas = [
            instruction
            for _, _, instruction in function.instructions()
            if isinstance(instruction, ir.Alloca)
        ]
        assert len(allocas) == 3

    def test_concrete_agreement_with_imp(self):
        program = sum_program()
        module, function, _ = compiled(program)
        imp_semantics = ImpSemantics({"sum": program})
        llvm_semantics = LlvmSemantics(module)
        for n in (0, 1, 6):
            imp_final = run_concrete(
                imp_semantics,
                imp_entry_state(program).bind("n", t.bv_const(n, 32)),
            )
            llvm_final = run_concrete(
                llvm_semantics,
                entry_state(module, function, arguments={"n": t.bv_const(n, 32)}),
            )
            assert imp_final.returned.value == llvm_final.returned.value


class TestCrossParadigmValidation:
    def validate(self, program) -> Verdict:
        module, function, slots = compiled(program)
        points = generate_cross_paradigm_sync_points(program, function, slots)
        keq = Keq(
            ImpSemantics({program.name: program}),
            LlvmSemantics(module),
            default_acceptability(),
        )
        return keq.check_equivalence(points).verdict

    def test_loop_program_validates(self):
        assert self.validate(sum_program()) is Verdict.VALIDATED

    def test_branching_program_validates(self):
        program = ImpProgram(
            name="absdiff",
            parameters=("a", "b"),
            body=(
                If(
                    BinExpr("<", Var("a"), Var("b")),
                    (Return(BinExpr("-", Var("b"), Var("a"))),),
                    (Return(BinExpr("-", Var("a"), Var("b"))),),
                ),
            ),
        )
        assert self.validate(program) is Verdict.VALIDATED

    def test_constraints_cross_the_paradigm_gap(self):
        program = sum_program()
        module, function, slots = compiled(program)
        points = generate_cross_paradigm_sync_points(program, function, slots)
        loop_point = next(p for p in points if p.kind == "loop")
        kinds = {(c.left.kind, c.right.kind) for c in loop_point.constraints}
        # env-on-the-left against mem/ptr-on-the-right: the IMP binding is
        # related to an LLVM memory cell.
        assert ("env", "mem") in kinds
        assert ("ptr", "env") in kinds

    def test_miscompilation_refuted(self):
        program = sum_program()
        module, function, slots = compiled(program)
        # Corrupt: make the loop add 'n' instead of 'i' to the accumulator.
        body = function.block("body2")
        for index, instruction in enumerate(body.instructions):
            if isinstance(instruction, ir.Load) and instruction.name == "load5":
                body.instructions[index] = ir.Load(
                    "load5", instruction.type, ir.LocalRef("n.slot", instruction.pointer.type)
                )
                break
        points = generate_cross_paradigm_sync_points(program, function, slots)
        keq = Keq(
            ImpSemantics({program.name: program}),
            LlvmSemantics(module),
            default_acceptability(),
        )
        assert keq.check_equivalence(points).verdict is Verdict.NOT_VALIDATED
