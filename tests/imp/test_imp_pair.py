"""Tests for the IMP / stack-machine pair and KEQ's language-parametricity.

The key claim: the *same* ``Keq`` class, untouched, validates compilations
for a language pair that shares nothing with LLVM or x86.
"""

import pytest

from repro.imp import (
    Assign,
    BinExpr,
    Const,
    If,
    ImpProgram,
    ImpSemantics,
    Return,
    StackInstr,
    StackSemantics,
    Var,
    While,
    compile_program,
    generate_imp_sync_points,
    imp_entry_state,
    stack_entry_state,
)
from repro.imp.stackm import StackProgram, StackVerifyError
from repro.keq import Keq, Verdict
from repro.semantics.state import StatusKind
from repro.smt import t


def run_concrete(semantics, state, bindings, limit=300):
    state = state.bind_many(bindings)
    frontier = [state]
    halted = []
    for _ in range(limit):
        advanced = []
        for current in frontier:
            successors = semantics.step(current)
            if successors:
                advanced.extend(successors)
            else:
                halted.append(current)
        if not advanced:
            return halted
        frontier = advanced
    raise AssertionError("did not halt")


def sum_program() -> ImpProgram:
    return ImpProgram(
        name="sum",
        parameters=("n",),
        body=(
            Assign("i", Const(0)),
            Assign("acc", Const(0)),
            While(
                BinExpr("<", Var("i"), Var("n")),
                (
                    Assign("acc", BinExpr("+", Var("acc"), Var("i"))),
                    Assign("i", BinExpr("+", Var("i"), Const(1))),
                ),
                label="main",
            ),
            Return(Var("acc")),
        ),
    )


def abs_program() -> ImpProgram:
    return ImpProgram(
        name="abs",
        parameters=("x",),
        body=(
            If(
                BinExpr("<", Var("x"), Const(0)),
                (Return(BinExpr("-", Const(0), Var("x"))),),
                (Return(Var("x")),),
            ),
        ),
    )


class TestImpSemantics:
    def test_concrete_sum(self):
        program = sum_program()
        semantics = ImpSemantics({"sum": program})
        halted = run_concrete(
            semantics, imp_entry_state(program), {"n": t.bv_const(4, 32)}
        )
        assert len(halted) == 1
        assert halted[0].returned.value == 6

    def test_concrete_abs(self):
        program = abs_program()
        semantics = ImpSemantics({"abs": program})
        for value, expected in ((-5, 5), (7, 7)):
            halted = run_concrete(
                semantics, imp_entry_state(program), {"x": t.bv_const(value, 32)}
            )
            assert halted[0].returned.value == expected

    def test_loop_headers_recorded(self):
        program = sum_program()
        assert "main" in program.loop_headers


class TestStackMachine:
    def test_compiled_sum_agrees(self):
        program = sum_program()
        compiled = compile_program(program)
        semantics = StackSemantics({"sum": compiled})
        halted = run_concrete(
            semantics, stack_entry_state(compiled), {"n": t.bv_const(5, 32)}
        )
        assert halted[0].returned.value == 10

    def test_verifier_computes_depths(self):
        compiled = compile_program(sum_program())
        assert compiled.depth_at("entry", 0) == 0
        # After the first PUSH the depth is 1.
        assert compiled.depth_at("entry", 1) == 1

    def test_verifier_rejects_underflow(self):
        program = StackProgram("bad", (), {"entry": [StackInstr("ADD")]})
        with pytest.raises(StackVerifyError):
            program.verify()

    def test_verifier_rejects_inconsistent_join(self):
        program = StackProgram(
            "bad",
            (),
            {
                "entry": [
                    StackInstr("PUSH", 1),
                    StackInstr("JMPZ", "a"),
                    StackInstr("PUSH", 2),  # depth 1 on this path
                    StackInstr("JMP", "a"),  # ...but 0 on the JMPZ path
                ],
                "a": [StackInstr("PUSH", 0), StackInstr("RET")],
            },
        )
        with pytest.raises(StackVerifyError):
            program.verify()


class TestKeqOnImpPair:
    def validate(self, program: ImpProgram) -> Verdict:
        compiled = compile_program(program)
        points = generate_imp_sync_points(program, compiled)
        keq = Keq(
            ImpSemantics({program.name: program}),
            StackSemantics({program.name: compiled}),
        )
        return keq.check_equivalence(points).verdict

    def test_sum_validates(self):
        assert self.validate(sum_program()) is Verdict.VALIDATED

    def test_abs_validates(self):
        assert self.validate(abs_program()) is Verdict.VALIDATED

    def test_nested_control_flow_validates(self):
        program = ImpProgram(
            name="clamp_sum",
            parameters=("n", "lim"),
            body=(
                Assign("i", Const(0)),
                Assign("acc", Const(0)),
                While(
                    BinExpr("<", Var("i"), Var("n")),
                    (
                        If(
                            BinExpr("<", Var("acc"), Var("lim")),
                            (Assign("acc", BinExpr("+", Var("acc"), Var("i"))),),
                            (Assign("acc", Var("lim")),),
                        ),
                        Assign("i", BinExpr("+", Var("i"), Const(1))),
                    ),
                    label="outer",
                ),
                Return(Var("acc")),
            ),
        )
        assert self.validate(program) is Verdict.VALIDATED

    def test_miscompilation_refuted(self):
        program = ImpProgram(
            "diff", ("a", "b"), (Return(BinExpr("-", Var("a"), Var("b"))),)
        )
        compiled = compile_program(program)
        entry = compiled.blocks["entry"]
        entry[0], entry[1] = entry[1], entry[0]  # swap LOAD a / LOAD b
        points = generate_imp_sync_points(program, compiled)
        keq = Keq(
            ImpSemantics({"diff": program}), StackSemantics({"diff": compiled})
        )
        assert keq.check_equivalence(points).verdict is Verdict.NOT_VALIDATED

    def test_wrong_constant_refuted(self):
        program = ImpProgram(
            "double", ("a",), (Return(BinExpr("*", Var("a"), Const(2))),)
        )
        compiled = compile_program(program)
        # Corrupt the pushed constant.
        entry = compiled.blocks["entry"]
        position = next(
            i for i, instr in enumerate(entry) if instr.op == "PUSH"
        )
        entry[position] = StackInstr("PUSH", 3)
        points = generate_imp_sync_points(program, compiled)
        keq = Keq(
            ImpSemantics({"double": program}),
            StackSemantics({"double": compiled}),
        )
        assert keq.check_equivalence(points).verdict is Verdict.NOT_VALIDATED

    def test_dropped_loop_body_statement_refuted(self):
        program = sum_program()
        compiled = compile_program(program)
        # Drop the accumulator update (first three instructions of body2).
        body = compiled.blocks["body2"]
        del body[0:4]
        compiled.depths.clear()
        compiled.verify()
        points = generate_imp_sync_points(program, compiled)
        keq = Keq(
            ImpSemantics({"sum": program}), StackSemantics({"sum": compiled})
        )
        assert keq.check_equivalence(points).verdict is Verdict.NOT_VALIDATED
