"""Tests for the term pretty-printer and the concrete evaluator."""

import pytest

from repro.smt import t
from repro.smt.eval import EvalError, evaluate
from repro.smt.printer import sort_str, to_str


class TestPrinter:
    def test_constants(self):
        assert to_str(t.bv_const(42, 32)) == "42:32"
        assert to_str(t.TRUE) == "true"
        assert to_str(t.FALSE) == "false"

    def test_variables(self):
        assert to_str(t.bv_var("x", 8)) == "x"
        assert to_str(t.bool_var("p")) == "p"

    def test_infix_operators(self):
        x = t.bv_var("x", 8)
        y = t.bv_var("y", 8)
        rendered = to_str(t.add(x, y))
        assert "+" in rendered and "x" in rendered and "y" in rendered

    def test_comparison_renders(self):
        x = t.bv_var("x", 8)
        assert "<u" in to_str(t.ult(x, t.bv_const(3, 8)))
        assert "<s" in to_str(t.slt(x, t.bv_const(3, 8)))

    def test_ite_renders(self):
        p = t.bool_var("p")
        rendered = to_str(t.ite(p, t.bv_const(1, 8), t.bv_const(2, 8)))
        assert "if" in rendered and "then" in rendered and "else" in rendered

    def test_extract_renders_bounds(self):
        x = t.bv_var("x", 32)
        assert "[15:8]" in to_str(t.extract(x, 15, 8))

    def test_depth_limit_elides(self):
        x = t.bv_var("x", 8)
        deep = x
        for i in range(30):
            deep = t.add(deep, t.bv_var(f"v{i}", 8))
        assert "..." in to_str(deep, max_depth=4)

    def test_sort_str(self):
        assert sort_str(t.bv_var("x", 16)) == "i16"
        assert sort_str(t.bool_var("p")) == "Bool"


class TestEvaluator:
    ENV = {"x": 200, "y": 3, "p": True}

    def test_arithmetic_wraps(self):
        x = t.bv_var("x", 8)
        assert evaluate(t.add(x, x), self.ENV) == (400) & 0xFF

    def test_signed_ops(self):
        x = t.bv_var("x", 8)  # 200 = -56 signed
        y = t.bv_var("y", 8)
        # sdiv truncates toward zero: -56 / 3 == -18.
        assert evaluate(t.sdiv(x, y), self.ENV) == t.truncate(-18, 8)
        assert evaluate(t.slt(x, y), self.ENV) is True  # -56 < 3

    def test_shifts(self):
        x = t.bv_var("x", 8)
        assert evaluate(t.shl(x, t.bv_const(1, 8)), self.ENV) == (400 & 0xFF)
        assert evaluate(t.lshr(x, t.bv_const(2, 8)), self.ENV) == 200 >> 2
        assert (
            evaluate(t.ashr(x, t.bv_const(2, 8)), self.ENV)
            == t.truncate(-56 >> 2, 8)
        )

    def test_oversized_shift_is_zero(self):
        x = t.bv_var("x", 8)
        assert evaluate(t.shl(x, t.bv_const(9, 8)), self.ENV) == 0

    def test_extract_concat_roundtrip(self):
        x = t.bv_var("x", 8)
        y = t.bv_var("y", 8)
        combined = t.concat(x, y)
        assert evaluate(combined, self.ENV) == (200 << 8) | 3
        assert evaluate(t.extract(combined, 15, 8), self.ENV) == 200

    def test_bool_connectives(self):
        p = t.bool_var("p")
        assert evaluate(t.and_(p, t.not_(p)), self.ENV) is False
        assert evaluate(t.or_(p, t.not_(p)), self.ENV) is True

    def test_unbound_variable_raises(self):
        with pytest.raises(EvalError):
            evaluate(t.bv_var("missing", 8), {})

    def test_select_handler(self):
        read = t.select("mem", t.bv_const(3, 64))
        result = evaluate(
            read, {}, select_handler=lambda arr, off, width: off * 10
        )
        assert result == 30

    def test_select_without_handler_raises(self):
        with pytest.raises(EvalError):
            evaluate(t.select("mem", t.bv_const(0, 64)), {})
