"""Tests for the solver-level query cache (memory LRU + persistent store)."""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.smt import QueryCache, Result, Solver, t
from repro.smt.cache import FAST_PATH_COST
from repro.smt.printer import canonical


def _sat_query():
    a = t.bv_var("a", 16)
    b = t.bv_var("b", 16)
    return t.eq(t.mul(a, b), t.bv_const(12345, 16))


def _unsat_query():
    a = t.bv_var("a", 8)
    return t.and_(t.ult(a, t.bv_const(3, 8)), t.ult(t.bv_const(5, 8), a))


class TestCanonical:
    def test_distinguishes_variable_widths(self):
        narrow = t.bv_var("x", 8)
        wide = t.bv_var("x", 16)
        assert canonical(narrow) != canonical(wide)

    def test_never_elides_deep_terms(self):
        term = t.bv_var("x", 8)
        for index in range(64):
            term = t.bvor(term, t.bv_var(f"y{index}", 8))
        assert "..." not in canonical(term)
        assert "y63" in canonical(term)

    def test_shares_repeated_subterms(self):
        x = t.bv_var("x", 32)
        y = t.bv_var("y", 32)
        product = t.mul(x, y)
        doubled = t.add(product, product)
        assert canonical(doubled).count("mul") == 1

    def test_identical_structure_identical_printing(self):
        assert canonical(_sat_query()) == canonical(_sat_query())


class TestMemoryCache:
    def test_same_query_twice_hits(self):
        cache = QueryCache()
        first = Solver(cache=cache)
        assert first.check_sat(_sat_query()) is Result.SAT
        assert first.stats.cache_hits == 0
        second = Solver(cache=cache)
        assert second.check_sat(_sat_query()) is Result.SAT
        assert second.stats.cache_hits == 1
        assert second.stats.sat_calls == 0

    def test_unsat_cached_too(self):
        cache = QueryCache()
        assert Solver(cache=cache).check_sat(_unsat_query()) is Result.UNSAT
        second = Solver(cache=cache)
        assert second.check_sat(_unsat_query()) is Result.UNSAT
        assert second.stats.cache_hits == 1

    def test_unknown_is_never_cached(self):
        cache = QueryCache()
        # Directly: store() must drop UNKNOWN silently.
        goal = _sat_query()
        cache.store(goal, Result.UNKNOWN, 0)
        assert cache.lookup(goal, None) is None
        # End to end: a budget-starved solver must not poison the cache.
        starved = Solver(conflict_budget=1, cache=cache)
        a = t.bv_var("u1", 32)
        b = t.bv_var("u2", 32)
        c = t.bv_var("u3", 32)
        hard = t.eq(
            t.mul(t.mul(a, b), c),
            # No witness among the deterministic assignments: forces CDCL.
            t.add(t.mul(a, a), t.bv_const(0x9E3779B1, 32)),
        )
        outcome = starved.check_sat(hard)
        if outcome is Result.UNKNOWN:
            stored = [
                entry for entry in cache._lru.values()
                if entry[0] is Result.UNKNOWN
            ]
            assert stored == []

    def test_simplification_equivalent_queries_share_entry(self):
        # zext(a) <u zext(b) rewrites to a <u b only inside simplify(), so
        # the two inputs are syntactically different but share one entry.
        cache = QueryCache()
        a = t.bv_var("a", 16)
        b = t.bv_var("b", 16)
        plain = t.ult(a, b)
        widened = t.ult(t.zext(a, 32), t.zext(b, 32))
        assert plain is not widened
        assert Solver(cache=cache).check_sat(plain) is Result.SAT
        second = Solver(cache=cache)
        assert second.check_sat(widened) is Result.SAT
        assert second.stats.cache_hits == 1

    def test_lru_evicts_oldest(self):
        cache = QueryCache(max_entries=2)
        queries = [
            t.eq(t.bv_var(f"v{i}", 8), t.bv_const(i, 8)) for i in range(3)
        ]
        for query in queries:
            cache.store(query, Result.SAT, 0)
        assert cache.lookup(queries[0], None) is None
        assert cache.lookup(queries[2], None) is Result.SAT

    def test_need_model_bypasses_cached_sat(self):
        cache = QueryCache()
        a = t.bv_var("m", 8)
        goal = t.ult(a, t.bv_const(10, 8))
        assert Solver(cache=cache).check_sat(goal) is Result.SAT
        solver = Solver(cache=cache)
        assert solver.check_sat(goal, need_model=True) is Result.SAT
        assert solver.last_model is not None
        assert solver.last_model.eval_bv(a) < 10


class TestBudgetSoundness:
    def test_entry_from_smaller_budget_is_reusable(self):
        cache = QueryCache()
        goal = _sat_query()
        cache.store(goal, Result.SAT, 10)
        assert cache.lookup(goal, 100) is Result.SAT
        assert cache.lookup(goal, None) is Result.SAT

    def test_entry_from_larger_budget_rejected(self):
        # Uncached, a budget-B run would return UNKNOWN for a query that
        # needs more than B conflicts; the cache must not turn that into
        # an answer.
        cache = QueryCache()
        goal = _sat_query()
        cache.store(goal, Result.SAT, 5000)
        assert cache.lookup(goal, 100) is None
        assert cache.stats.budget_rejections == 1

    def test_fast_path_entries_usable_under_any_budget(self):
        cache = QueryCache()
        goal = _sat_query()
        cache.store(goal, Result.SAT, FAST_PATH_COST)
        assert cache.lookup(goal, 1) is Result.SAT

    def test_end_to_end_budget_starved_solver_rejects_rich_entry(self):
        # Find a query the solver decides only through CDCL search, then
        # check a conflict-starved solver sharing the cache still returns
        # UNKNOWN (outcome-identity with the uncached run).
        cache = QueryCache()
        rich = Solver(conflict_budget=200_000, cache=cache)
        a = t.bv_var("q1", 24)
        b = t.bv_var("q2", 24)
        goal = t.eq(
            t.mul(a, b), t.add(t.mul(a, a), t.bv_const(0x123457, 24))
        )
        outcome = rich.check_sat(goal)
        if rich.stats.sat_calls == 0 or outcome is Result.UNKNOWN:
            pytest.skip("query decided on a fast path; cannot starve it")
        conflicts = rich.stats.per_query_conflicts[-1]
        if conflicts == 0:
            pytest.skip("query decided without conflicts")
        starved = Solver(conflict_budget=conflicts, cache=cache)
        assert starved.check_sat(goal) is Result.UNKNOWN
        assert starved.stats.cache_hits == 0


class TestPersistentCache:
    def test_written_by_one_cache_read_by_another(self, tmp_path):
        directory = str(tmp_path / "qc")
        goal = _sat_query()
        writer = Solver(cache=QueryCache(cache_dir=directory))
        assert writer.check_sat(goal) is Result.SAT
        fresh = QueryCache(cache_dir=directory)
        reader = Solver(cache=fresh)
        assert reader.check_sat(goal) is Result.SAT
        assert reader.stats.cache_hits == 1
        assert fresh.stats.disk_hits == 1

    def test_read_by_fresh_process(self, tmp_path):
        directory = str(tmp_path / "qc")
        writer = Solver(cache=QueryCache(cache_dir=directory))
        assert writer.check_sat(_sat_query()) is Result.SAT
        script = textwrap.dedent(
            """
            from repro.smt import QueryCache, Result, Solver, t

            a = t.bv_var("a", 16)
            b = t.bv_var("b", 16)
            goal = t.eq(t.mul(a, b), t.bv_const(12345, 16))
            cache = QueryCache(cache_dir={directory!r})
            solver = Solver(cache=cache)
            assert solver.check_sat(goal) is Result.SAT
            assert solver.stats.cache_hits == 1, solver.stats
            assert cache.stats.disk_hits == 1, cache.stats
            print("fresh-process hit ok")
            """
        ).format(directory=directory)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fresh-process hit ok" in proc.stdout

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        directory = str(tmp_path / "qc")
        cache = QueryCache(cache_dir=directory)
        goal = _sat_query()
        cache.store(goal, Result.SAT, 3)
        path = cache._path_for(cache.key_for(goal))
        with open(path, "w") as handle:
            handle.write("{not json")
        fresh = QueryCache(cache_dir=directory)
        assert fresh.lookup(goal, None) is None

    def test_unknown_on_disk_ignored(self, tmp_path):
        directory = str(tmp_path / "qc")
        cache = QueryCache(cache_dir=directory)
        goal = _sat_query()
        cache.store(goal, Result.SAT, 3)
        path = cache._path_for(cache.key_for(goal))
        with open(path, "w") as handle:
            handle.write('{"result": "unknown", "cost": 0}')
        fresh = QueryCache(cache_dir=directory)
        assert fresh.lookup(goal, None) is None

    def test_disk_keeps_cheapest_cost(self, tmp_path):
        directory = str(tmp_path / "qc")
        goal = _sat_query()
        first = QueryCache(cache_dir=directory)
        first.store(goal, Result.SAT, 500)
        second = QueryCache(cache_dir=directory)
        second.store(goal, Result.SAT, 2)
        third = QueryCache(cache_dir=directory)
        third.store(goal, Result.SAT, 900)  # must not clobber cost 2
        fresh = QueryCache(cache_dir=directory)
        assert fresh.lookup(goal, 2) is Result.SAT


class TestConcurrentWriters:
    """The disk layer under concurrent campaign-shard workers: atomic
    publication, no temp-file litter, torn/stale artefacts read as misses."""

    def test_no_temp_files_left_after_stores(self, tmp_path):
        directory = str(tmp_path / "qc")
        cache = QueryCache(cache_dir=directory)
        cache.store(_sat_query(), Result.SAT, 3)
        cache.store(_unsat_query(), Result.UNSAT, 5)
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_stale_temp_file_is_ignored_and_overwritten_store_works(
        self, tmp_path
    ):
        # A worker SIGKILLed mid-write leaves a private *.tmp behind; it
        # must never satisfy a lookup, and later stores proceed normally.
        directory = str(tmp_path / "qc")
        cache = QueryCache(cache_dir=directory)
        goal = _sat_query()
        path = cache._path_for(cache.key_for(goal))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path + ".garbage.tmp", "w") as handle:
            handle.write('{"result": "sat"')  # torn
        assert cache.lookup(goal, None) is None
        cache.store(goal, Result.SAT, 3)
        fresh = QueryCache(cache_dir=directory)
        assert fresh.lookup(goal, None) is Result.SAT

    def test_parallel_writers_share_one_directory(self, tmp_path):
        """Several processes hammer the same cache_dir — same key and
        distinct keys — and every published entry must be whole."""
        directory = str(tmp_path / "qc")
        script = textwrap.dedent(
            """
            import sys
            from repro.smt import QueryCache, Result, t

            worker = int(sys.argv[1])
            cache = QueryCache(cache_dir={directory!r})
            shared = t.eq(
                t.mul(t.bv_var("a", 16), t.bv_var("b", 16)),
                t.bv_const(12345, 16),
            )
            private = t.eq(
                t.bv_var("p", 16), t.bv_const(1000 + worker, 16)
            )
            for _ in range(25):
                cache.store(shared, Result.SAT, 3 + worker)
                cache.store(private, Result.SAT, worker)
            print("writer done")
            """
        ).format(directory=directory)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(worker)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for worker in range(4)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "writer done" in out
        # No torn temp files anywhere, and every entry reads back whole.
        assert list(tmp_path.rglob("*.tmp")) == []
        fresh = QueryCache(cache_dir=directory)
        assert fresh.lookup(_sat_query(), None) is Result.SAT
        for worker in range(4):
            goal = t.eq(
                t.bv_var("p", 16), t.bv_const(1000 + worker, 16)
            )
            assert fresh.lookup(goal, None) is Result.SAT


class TestTargetNamespacing:
    """Per-target views over one shared store (``for_target``): obligations
    from different target ISAs must never alias, even through a shared
    ``--cache-dir``."""

    def test_same_namespace_returns_self(self):
        cache = QueryCache()
        assert cache.for_target("") is cache
        view = cache.for_target("vriscv")
        assert view.for_target("vriscv") is view

    def test_views_do_not_alias_in_memory(self):
        cache = QueryCache()
        goal = _sat_query()
        first = Solver(cache=cache.for_target("vx86"))
        assert first.check_sat(goal) is Result.SAT
        # Identical formula under the other target: decided fresh.
        second = Solver(cache=cache.for_target("vriscv"))
        assert second.check_sat(goal) is Result.SAT
        assert second.stats.cache_hits == 0
        assert second.stats.sat_calls == 1
        # Same target: served from the shared store.
        third = Solver(cache=cache.for_target("vx86"))
        assert third.check_sat(goal) is Result.SAT
        assert third.stats.cache_hits == 1

    def test_views_do_not_alias_on_disk(self, tmp_path):
        directory = str(tmp_path / "qc")
        goal = _sat_query()
        writer = Solver(cache=QueryCache(cache_dir=directory).for_target("vx86"))
        assert writer.check_sat(goal) is Result.SAT
        fresh = QueryCache(cache_dir=directory)
        cross = Solver(cache=fresh.for_target("vriscv"))
        assert cross.check_sat(goal) is Result.SAT
        assert cross.stats.cache_hits == 0
        same = Solver(cache=QueryCache(cache_dir=directory).for_target("vx86"))
        assert same.check_sat(goal) is Result.SAT
        assert same.stats.cache_hits == 1

    def test_keys_prefixed_memo_shared(self):
        cache = QueryCache()
        goal = _sat_query()
        raw = cache.key_for(goal)
        namespaced = cache.for_target("vriscv").key_for(goal)
        assert namespaced == f"vriscv\x1f{raw}"
        # The canonicalisation memo is shared across views: one entry.
        assert len(cache._key_memo) == 1

    def test_views_share_statistics(self):
        cache = QueryCache()
        view = cache.for_target("vriscv")
        assert view.stats is cache.stats
