"""Unit tests for substitution and the rewriting simplifier."""

from repro.smt import simplify, substitute, t


class TestSubstitute:
    def test_variable_replacement(self):
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        expr = t.add(a, t.bv_const(1, 32))
        assert substitute(expr, {a: b}) is t.add(b, t.bv_const(1, 32))

    def test_substitution_triggers_folding(self):
        a = t.bv_var("a", 32)
        expr = t.add(a, t.bv_const(1, 32))
        result = substitute(expr, {a: t.bv_const(41, 32)})
        assert result.is_const() and result.value == 42

    def test_empty_mapping_is_identity(self):
        expr = t.add(t.bv_var("a", 32), t.bv_var("b", 32))
        assert substitute(expr, {}) is expr

    def test_shared_subterms_substituted_once(self):
        a = t.bv_var("a", 32)
        shared = t.add(a, t.bv_const(1, 32))
        expr = t.mul(shared, shared)
        result = substitute(expr, {a: t.bv_const(2, 32)})
        assert result.is_const() and result.value == 9

    def test_whole_subterm_replacement(self):
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        inner = t.add(a, b)
        expr = t.mul(inner, t.bv_const(2, 32))
        result = substitute(expr, {inner: t.bv_const(3, 32)})
        assert result.is_const() and result.value == 6

    def test_bool_substitution(self):
        p = t.bool_var("p")
        expr = t.and_(p, t.bool_var("q"))
        assert substitute(expr, {p: t.TRUE}) is t.bool_var("q")

    def test_deep_term_no_recursion_error(self):
        a = t.bv_var("a", 32)
        expr = a
        for i in range(5000):
            expr = t.bvor(expr, t.bv_var(f"x{i}", 32))
        substitute(expr, {a: t.bv_const(1, 32)})  # must not raise


class TestRewrites:
    def test_offset_equality_cancels_base(self):
        x = t.bv_var("x", 32)
        lhs = t.add(x, t.bv_const(4, 32))
        rhs = t.add(x, t.bv_const(4, 32))
        assert simplify(t.eq(lhs, rhs)) is t.TRUE

    def test_offset_disequality_detected(self):
        x = t.bv_var("x", 32)
        lhs = t.add(x, t.bv_const(4, 32))
        rhs = t.add(x, t.bv_const(8, 32))
        assert simplify(t.eq(lhs, rhs)) is t.FALSE

    def test_zext_equality_strips_extension(self):
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        goal = t.eq(t.zext(a, 32), t.zext(b, 32))
        assert simplify(goal) is t.eq(a, b)

    def test_zext_ult_strips_extension(self):
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        goal = t.ult(t.zext(a, 32), t.zext(b, 32))
        assert simplify(goal) is t.ult(a, b)

    def test_sext_slt_strips_extension(self):
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        goal = t.slt(t.sext(a, 32), t.sext(b, 32))
        assert simplify(goal) is t.slt(a, b)

    def test_widened_sub_compare_normalizes(self):
        # sext(a,16) - sext(b,16) <s 0  ->  a <s b (the x86 cmp/jl idiom).
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        wide = t.sub(t.sext(a, 16), t.sext(b, 16))
        assert simplify(t.slt(wide, t.zero(16))) is t.slt(a, b)

    def test_ite_condition_duplication_collapses(self):
        p = t.bool_var("p")
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        c = t.bv_var("c", 8)
        nested = t.ite(p, t.ite(p, a, b), c)
        assert simplify(nested) is t.ite(p, a, c)

    def test_extract_distributes_over_and(self):
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        goal = t.extract(t.bvand(a, b), 7, 0)
        expected = t.bvand(t.extract(a, 7, 0), t.extract(b, 7, 0))
        assert simplify(goal) is expected

    def test_low_extract_distributes_over_add(self):
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        goal = t.extract(t.add(a, b), 7, 0)
        expected = t.add(t.extract(a, 7, 0), t.extract(b, 7, 0))
        assert simplify(goal) is expected

    def test_eq_with_distinct_const_ite_branches(self):
        p = t.bool_var("p")
        branchy = t.ite(p, t.bv_const(1, 8), t.bv_const(2, 8))
        assert simplify(t.eq(branchy, t.bv_const(1, 8))) is p
        assert simplify(t.eq(branchy, t.bv_const(2, 8))) is t.not_(p)
        assert simplify(t.eq(branchy, t.bv_const(3, 8))) is t.FALSE

    def test_already_simple_terms_untouched(self):
        a = t.bv_var("a", 32)
        expr = t.add(a, t.bv_const(1, 32))
        assert simplify(expr) is expr
