"""Tests for the solver façade: proofs, models, positive-form optimization."""

from repro.smt import Result, Solver, t


class TestCheckSat:
    def test_trivially_true(self):
        solver = Solver()
        assert solver.check_sat(t.TRUE) is Result.SAT
        assert solver.stats.fast_path == 1

    def test_trivially_false(self):
        solver = Solver()
        assert solver.check_sat(t.FALSE) is Result.UNSAT

    def test_conjunction_input(self):
        solver = Solver()
        a = t.bv_var("a", 8)
        result = solver.check_sat(
            [t.ult(a, t.bv_const(5, 8)), t.ugt(a, t.bv_const(2, 8))],
            need_model=True,
        )
        assert result is Result.SAT
        value = solver.last_model.eval_bv(a)
        assert 2 < value < 5

    def test_unsat_range(self):
        solver = Solver()
        a = t.bv_var("a", 8)
        result = solver.check_sat(
            [t.ult(a, t.bv_const(3, 8)), t.ugt(a, t.bv_const(5, 8))]
        )
        assert result is Result.UNSAT

    def test_model_satisfies_formula(self):
        solver = Solver()
        a = t.bv_var("a", 16)
        b = t.bv_var("b", 16)
        goal = t.eq(t.add(a, b), t.bv_const(1000, 16))
        assert solver.check_sat(goal, need_model=True) is Result.SAT
        model = solver.last_model
        assert (model.eval_bv(a) + model.eval_bv(b)) & 0xFFFF == 1000

    def test_budget_exhaustion_is_unknown(self):
        solver = Solver(conflict_budget=1)
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        c = t.bv_var("c", 32)
        hard = t.eq(t.mul(t.mul(a, b), c), t.bv_const(0xDEADBEEF, 32))
        assert solver.check_sat(hard) in (Result.UNKNOWN, Result.SAT)


class TestProve:
    def test_add_associativity(self):
        solver = Solver()
        a, b, c = (t.bv_var(n, 16) for n in "abc")
        assert solver.prove(t.eq(t.add(t.add(a, b), c), t.add(a, t.add(b, c))))

    def test_de_morgan_bitwise(self):
        solver = Solver()
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        assert solver.prove(
            t.eq(t.bvnot(t.bvand(a, b)), t.bvor(t.bvnot(a), t.bvnot(b)))
        )

    def test_non_theorem_rejected(self):
        solver = Solver()
        a = t.bv_var("a", 8)
        assert not solver.prove(t.eq(t.add(a, a), t.mul(a, a)))

    def test_unsigned_overflow_distinguishes_lt_encodings(self):
        # a < b is NOT equivalent to a - b <s 0 at the same width.
        solver = Solver()
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        assert not solver.prove_equiv(
            t.slt(a, b), t.slt(t.sub(a, b), t.zero(8))
        )

    def test_widened_subtraction_compare_is_equivalent(self):
        # ...but sext to double width first, as x86 semantics do, and it is.
        solver = Solver()
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        wide = t.sub(t.sext(a, 16), t.sext(b, 16))
        assert solver.prove_equiv(t.slt(a, b), t.slt(wide, t.zero(16)))

    def test_unsigned_borrow_flag_equivalence(self):
        # The x86 "jb after cmp" idiom: borrow out of a - b == a <u b.
        solver = Solver()
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        wide = t.sub(t.zext(a, 16), t.zext(b, 16))
        borrow = t.ne(t.extract(wide, 15, 8), t.zero(8))
        assert solver.prove_equiv(t.ult(a, b), borrow)


class TestImplication:
    def test_negative_form(self):
        solver = Solver()
        a = t.bv_var("a", 8)
        antecedent = t.ult(a, t.bv_const(10, 8))
        consequent = t.ult(a, t.bv_const(20, 8))
        assert solver.prove_implies(antecedent, consequent)
        assert not solver.prove_implies(consequent, antecedent)

    def test_positive_form_matches_negative_form(self):
        # For a deterministic branch, siblings partition the negation.
        solver = Solver()
        a = t.bv_var("a", 8)
        n = t.bv_var("n", 8)
        phi1 = t.ult(a, n)
        phi2 = t.ult(a, n)  # target's taken-branch condition
        siblings = [t.uge(a, n)]  # the not-taken branch
        assert solver.prove_implies_positive(phi1, siblings)
        assert solver.prove_implies(phi1, phi2)

    def test_positive_form_detects_non_implication(self):
        solver = Solver()
        a = t.bv_var("a", 8)
        phi1 = t.ult(a, t.bv_const(20, 8))
        siblings = [t.uge(a, t.bv_const(10, 8))]  # complement of a<10
        assert not solver.prove_implies_positive(phi1, siblings)


class TestAckermann:
    def test_equal_offsets_give_equal_selects(self):
        solver = Solver()
        i = t.bv_var("i", 64)
        j = t.bv_var("j", 64)
        read1 = t.select("mem", i)
        read2 = t.select("mem", j)
        assert solver.prove(t.implies(t.eq(i, j), t.eq(read1, read2)))

    def test_distinct_offsets_unconstrained(self):
        solver = Solver()
        read1 = t.select("mem", t.bv_const(0, 64))
        read2 = t.select("mem", t.bv_const(1, 64))
        assert not solver.prove(t.eq(read1, read2))

    def test_different_arrays_unconstrained(self):
        solver = Solver()
        i = t.bv_var("i", 64)
        read1 = t.select("mem_a", i)
        read2 = t.select("mem_b", i)
        assert not solver.prove(t.eq(read1, read2))


class TestStats:
    def test_fast_path_counted(self):
        solver = Solver()
        a = t.bv_var("a", 32)
        solver.prove(t.eq(t.add(a, t.zero(32)), a))
        assert solver.stats.queries == 1
        assert solver.stats.fast_path == 1
        assert solver.stats.sat_calls == 0

    def test_queries_counted(self):
        solver = Solver()
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        solver.prove(t.eq(t.bvand(a, b), t.bvand(b, a)))
        solver.check_sat(t.ult(a, b))
        assert solver.stats.queries == 2
        # Both discharge without bit-blasting (fast paths).
        assert solver.stats.fast_path >= 1

    def test_need_model_forces_real_solve(self):
        solver = Solver()
        a = t.bv_var("a", 8)
        goal = t.ult(a, t.bv_const(10, 8))
        assert solver.check_sat(goal) is Result.SAT  # may skip the model
        assert solver.check_sat(goal, need_model=True) is Result.SAT
        assert solver.last_model is not None
        assert solver.last_model.eval_bv(a) < 10
