"""Unit tests for the hash-consed term layer."""

import pytest

from repro.smt import terms as t


class TestInterning:
    def test_structurally_equal_terms_are_identical(self):
        a1 = t.bv_var("a", 32)
        a2 = t.bv_var("a", 32)
        assert a1 is a2

    def test_compound_terms_are_interned(self):
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        assert t.add(a, b) is t.add(a, b)

    def test_same_name_different_width_is_distinct(self):
        assert t.bv_var("a", 8) is not t.bv_var("a", 16)

    def test_serial_numbers_are_distinct(self):
        a = t.bv_var("serial_a", 32)
        b = t.bv_var("serial_b", 32)
        assert a.serial != b.serial


class TestSorts:
    def test_bv_sort_interned(self):
        assert t.bv_sort(32) is t.bv_sort(32)

    def test_bv_sort_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            t.bv_sort(0)

    def test_width_accessor(self):
        assert t.bv_var("a", 17).width == 17

    def test_width_of_bool_raises(self):
        with pytest.raises(TypeError):
            t.bool_var("p").width


class TestConstantFolding:
    def test_add_wraps(self):
        assert t.add(t.bv_const(255, 8), t.bv_const(1, 8)).value == 0

    def test_sub_self_is_zero(self):
        a = t.bv_var("a", 32)
        assert t.sub(a, a) is t.zero(32)

    def test_mul_by_zero(self):
        assert t.mul(t.bv_var("a", 32), t.zero(32)) is t.zero(32)

    def test_mul_by_one(self):
        a = t.bv_var("a", 32)
        assert t.mul(a, t.bv_const(1, 32)) is a

    def test_udiv_by_zero_is_all_ones(self):
        assert t.udiv(t.bv_const(7, 8), t.zero(8)).value == 255

    def test_urem_by_zero_is_dividend(self):
        assert t.urem(t.bv_const(7, 8), t.zero(8)).value == 7

    def test_sdiv_truncates_toward_zero(self):
        # -7 / 2 == -3 in SMT-LIB (truncating), not -4 (flooring).
        result = t.sdiv(t.bv_const(-7, 8), t.bv_const(2, 8))
        assert t.to_signed(result.value, 8) == -3

    def test_srem_sign_follows_dividend(self):
        result = t.srem(t.bv_const(-7, 8), t.bv_const(2, 8))
        assert t.to_signed(result.value, 8) == -1

    def test_shl_folds(self):
        assert t.shl(t.bv_const(1, 8), t.bv_const(3, 8)).value == 8

    def test_shl_out_of_range_is_zero(self):
        assert t.shl(t.bv_var("a", 8), t.bv_const(9, 8)) is t.zero(8)

    def test_ashr_fills_sign(self):
        result = t.ashr(t.bv_const(0x80, 8), t.bv_const(7, 8))
        assert result.value == 0xFF

    def test_reassociation_of_constant_adds(self):
        a = t.bv_var("a", 32)
        nested = t.add(t.add(a, t.bv_const(1, 32)), t.bv_const(2, 32))
        assert nested is t.add(a, t.bv_const(3, 32))


class TestIdentities:
    def test_add_zero(self):
        a = t.bv_var("a", 32)
        assert t.add(a, t.zero(32)) is a

    def test_xor_self(self):
        a = t.bv_var("a", 32)
        assert t.bvxor(a, a) is t.zero(32)

    def test_and_with_all_ones(self):
        a = t.bv_var("a", 8)
        assert t.bvand(a, t.ones(8)) is a

    def test_or_with_zero(self):
        a = t.bv_var("a", 8)
        assert t.bvor(a, t.zero(8)) is a

    def test_double_negation(self):
        a = t.bv_var("a", 32)
        assert t.neg(t.neg(a)) is a

    def test_double_bvnot(self):
        a = t.bv_var("a", 32)
        assert t.bvnot(t.bvnot(a)) is a

    def test_commutative_ops_canonicalize(self):
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        assert t.add(a, b) is t.add(b, a)
        assert t.mul(a, b) is t.mul(b, a)
        assert t.bvand(a, b) is t.bvand(b, a)
        assert t.bvor(a, b) is t.bvor(b, a)
        assert t.bvxor(a, b) is t.bvxor(b, a)

    def test_eq_is_symmetric_by_interning(self):
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        assert t.eq(a, b) is t.eq(b, a)


class TestBooleans:
    def test_and_flattens_and_dedups(self):
        p = t.bool_var("p")
        q = t.bool_var("q")
        assert t.and_(t.and_(p, q), p) is t.and_(p, q)

    def test_and_with_false(self):
        assert t.and_(t.bool_var("p"), t.FALSE) is t.FALSE

    def test_or_with_true(self):
        assert t.or_(t.bool_var("p"), t.TRUE) is t.TRUE

    def test_contradiction_detected(self):
        p = t.bool_var("p")
        assert t.and_(p, t.not_(p)) is t.FALSE

    def test_excluded_middle_detected(self):
        p = t.bool_var("p")
        assert t.or_(p, t.not_(p)) is t.TRUE

    def test_implies_false_antecedent(self):
        assert t.implies(t.FALSE, t.bool_var("p")) is t.TRUE

    def test_iff_self(self):
        p = t.bool_var("p")
        assert t.iff(p, p) is t.TRUE

    def test_empty_conj_is_true(self):
        assert t.conj([]) is t.TRUE

    def test_empty_disj_is_false(self):
        assert t.disj([]) is t.FALSE


class TestExtractConcat:
    def test_extract_full_width_is_identity(self):
        a = t.bv_var("a", 32)
        assert t.extract(a, 31, 0) is a

    def test_extract_of_extract_composes(self):
        a = t.bv_var("a", 32)
        outer = t.extract(t.extract(a, 23, 8), 7, 0)
        assert outer is t.extract(a, 15, 8)

    def test_extract_out_of_range_raises(self):
        with pytest.raises(ValueError):
            t.extract(t.bv_var("a", 8), 8, 0)

    def test_concat_width(self):
        combined = t.concat(t.bv_var("a", 8), t.bv_var("b", 16))
        assert combined.width == 24

    def test_concat_of_adjacent_extracts_fuses(self):
        a = t.bv_var("a", 32)
        fused = t.concat(t.extract(a, 15, 8), t.extract(a, 7, 0))
        assert fused is t.extract(a, 15, 0)

    def test_byte_roundtrip_fuses_to_identity(self):
        a = t.bv_var("a", 32)
        byte_list = [t.extract(a, i * 8 + 7, i * 8) for i in range(4)]
        rebuilt = byte_list[0]
        for byte in byte_list[1:]:
            rebuilt = t.concat(byte, rebuilt)
        assert rebuilt is a

    def test_extract_through_concat(self):
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        combined = t.concat(a, b)
        assert t.extract(combined, 7, 0) is b
        assert t.extract(combined, 15, 8) is a

    def test_zext_then_extract_low(self):
        a = t.bv_var("a", 8)
        assert t.extract(t.zext(a, 32), 7, 0) is a

    def test_zext_then_extract_high_is_zero(self):
        a = t.bv_var("a", 8)
        assert t.extract(t.zext(a, 32), 31, 8) is t.zero(24)

    def test_trunc(self):
        a = t.bv_var("a", 32)
        assert t.trunc(a, 8) is t.extract(a, 7, 0)

    def test_nested_zext_collapses(self):
        a = t.bv_var("a", 8)
        assert t.zext(t.zext(a, 16), 32) is t.zext(a, 32)


class TestPredicates:
    def test_ult_zero_rhs_is_false(self):
        assert t.ult(t.bv_var("a", 8), t.zero(8)) is t.FALSE

    def test_ult_self_is_false(self):
        a = t.bv_var("a", 8)
        assert t.ult(a, a) is t.FALSE

    def test_ule_via_ult(self):
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        assert t.ule(a, b) is t.not_(t.ult(b, a))

    def test_signed_comparison_constants(self):
        assert t.slt(t.bv_const(-1, 8), t.bv_const(0, 8)) is t.TRUE
        assert t.ult(t.bv_const(-1, 8), t.bv_const(0, 8)) is t.FALSE

    def test_width_mismatch_raises(self):
        with pytest.raises(TypeError):
            t.eq(t.bv_var("a", 8), t.bv_var("b", 16))


class TestIte:
    def test_const_condition(self):
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        assert t.ite(t.TRUE, a, b) is a
        assert t.ite(t.FALSE, a, b) is b

    def test_same_branches(self):
        a = t.bv_var("a", 8)
        assert t.ite(t.bool_var("p"), a, a) is a

    def test_negated_condition_swaps(self):
        p = t.bool_var("p")
        a = t.bv_var("a", 8)
        b = t.bv_var("b", 8)
        assert t.ite(t.not_(p), a, b) is t.ite(p, b, a)

    def test_bool_ite_collapses_to_condition(self):
        p = t.bool_var("p")
        assert t.ite(p, t.TRUE, t.FALSE) is p

    def test_sort_mismatch_raises(self):
        with pytest.raises(TypeError):
            t.ite(t.bool_var("p"), t.bv_var("a", 8), t.bv_var("b", 16))


class TestHelpers:
    def test_to_signed(self):
        assert t.to_signed(0xFF, 8) == -1
        assert t.to_signed(0x7F, 8) == 127

    def test_free_vars(self):
        a = t.bv_var("a", 32)
        b = t.bv_var("b", 32)
        expr = t.add(t.mul(a, b), a)
        assert t.free_vars(expr) == frozenset((a, b))

    def test_free_vars_of_const_is_empty(self):
        assert t.free_vars(t.bv_const(1, 8)) == frozenset()

    def test_size_counts_dag_nodes_once(self):
        a = t.bv_var("a", 32)
        shared = t.add(a, t.bv_const(1, 32))
        expr = t.mul(shared, shared)
        # mul, add, a, 1 -> four distinct nodes.
        assert t.size(expr) == 4

    def test_bool_to_bv(self):
        p = t.bool_var("p")
        encoded = t.bool_to_bv(p, 1)
        assert encoded.width == 1
