"""SolverSession: incremental checks vs fresh check_sat.

The contract: ``session.check(delta, assumptions=extra)`` is semantically
``check_sat(conj([*base, *extra, delta]))`` — same verdicts, same cache
keys — while reusing one SAT solver and bit-blaster across checks.
"""

import pytest

from repro.smt import terms as t
from repro.smt.cache import QueryCache
from repro.smt.solver import Result, Solver

W = 8


def bv(name):
    return t.bv_var(name, W)


def const(value):
    return t.bv_const(value, W)


class TestSessionVerdicts:
    def test_unsat_delta_under_assumptions(self):
        x, y = bv("x"), bv("y")
        # y = x*(x+1) is always even; asserting its low bit is 1 is UNSAT.
        prefix = t.eq(y, t.mul(x, t.add(x, const(1))))
        solver = Solver()
        with solver.session([prefix]) as session:
            delta = t.eq(t.extract(y, 0, 0), t.bv_const(1, 1))
            assert session.check(delta) is Result.UNSAT
            sat_delta = t.eq(t.extract(y, 0, 0), t.bv_const(0, 1))
            assert session.check(sat_delta) is Result.SAT

    def test_matches_fresh_solver(self):
        x, y = bv("x"), bv("y")
        prefix = t.eq(y, t.mul(x, x))
        deltas = [
            t.eq(y, const(16)),
            t.ult(y, const(2)),
            t.eq(t.bvand(y, const(1)), const(1)),
            t.eq(t.add(y, y), const(3)),
        ]
        session_solver = Solver()
        fresh_results = [
            Solver().check_sat(t.and_(prefix, delta)) for delta in deltas
        ]
        with session_solver.session([prefix]) as session:
            incremental = [session.check(delta) for delta in deltas]
        assert incremental == fresh_results

    def test_per_check_assumptions(self):
        x = bv("x")
        solver = Solver()
        with solver.session() as session:
            even = t.eq(t.extract(x, 0, 0), t.bv_const(0, 1))
            odd = t.eq(t.extract(x, 0, 0), t.bv_const(1, 1))
            assert session.check(odd, assumptions=[even]) is Result.UNSAT
            assert session.check(odd) is Result.SAT
            assert session.check(even, assumptions=[even]) is Result.SAT

    def test_interleaved_sat_unsat(self):
        """Learned clauses from UNSAT checks must not leak into later SAT
        checks of the same session (the contamination bug at façade level)."""
        x, y = bv("x"), bv("y")
        prefix = t.eq(y, t.add(x, const(1)))
        solver = Solver()
        with solver.session([prefix]) as session:
            assert session.check(t.eq(y, x)) is Result.UNSAT
            assert session.check(t.eq(y, const(5))) is Result.SAT
            assert session.check(t.ult(y, x)) is Result.SAT  # x = 255 wraps
            assert (
                session.check(t.and_(t.eq(x, const(0)), t.ult(y, x)))
                is Result.UNSAT
            )
            assert session.check(t.eq(x, const(0))) is Result.SAT


class TestSessionModels:
    def test_model_satisfies_combined_goal(self):
        x, y = bv("x"), bv("y")
        prefix = t.eq(y, t.mul(x, x))
        solver = Solver()
        with solver.session([prefix]) as session:
            delta = t.ult(const(3), y)
            assert session.check(delta, need_model=True) is Result.SAT
            model = solver.last_model
            assert model is not None
            xv, yv = model.eval_bv(x), model.eval_bv(y)
            assert (xv * xv) & 0xFF == yv
            assert 3 < yv

    def test_trivial_goal_yields_model(self):
        solver = Solver()
        with solver.session() as session:
            assert session.check(t.TRUE, need_model=True) is Result.SAT
            assert solver.last_model is not None


class TestSessionCore:
    def test_last_core_names_assumption_terms(self):
        x = bv("x")
        lower = t.ult(const(10), x)  # x > 10
        upper = t.ult(x, const(5))  # x < 5
        unrelated = t.ult(x, const(200))
        solver = Solver()
        with solver.session([lower]) as session:
            outcome = session.check(upper, assumptions=[unrelated])
            assert outcome is Result.UNSAT
            core = session.last_core
            assert core is not None
            assert set(core) <= {lower, upper, unrelated}
            # The contradiction needs both bounds; the loose one is noise.
            assert lower in core and upper in core


class TestSessionStats:
    def test_incremental_counters(self):
        x, y = bv("x"), bv("y")
        prefix = t.eq(y, t.mul(x, t.add(x, const(1))))
        solver = Solver()
        with solver.session([prefix]) as session:
            for i in range(3):
                # y is a product of consecutive integers, hence even; each
                # odd target is UNSAT and needs bit-level mult reasoning.
                session.check(t.eq(y, const(2 * i + 1)))
        stats = solver.stats
        assert stats.incremental_checks == 3
        assert stats.queries == 3
        # The second and third checks re-encode the shared y*y subterm from
        # the blaster cache.
        assert stats.encode_cache_hits > 0

    def test_fresh_path_unaffected(self):
        x = bv("x")
        solver = Solver()
        solver.check_sat(t.eq(x, const(3)))
        assert solver.stats.incremental_checks == 0


class TestSessionCacheInterplay:
    def test_shared_namespace_with_fresh_path(self):
        """A goal decided through a session must memo-hit when the same
        conjunction is later issued through check_sat, and vice versa."""
        x, y = bv("x"), bv("y")
        prefix = t.eq(y, t.mul(x, x))
        delta = t.eq(t.bvand(t.mul(y, x), const(7)), const(5))
        solver = Solver()
        with solver.session([prefix]) as session:
            first = session.check(delta)
        fast_before = solver.stats.fast_path
        again = solver.check_sat(t.and_(prefix, delta))
        assert again is first
        assert solver.stats.fast_path == fast_before + 1  # memo hit

    def test_session_checks_never_store_to_shared_cache(self):
        """Session answers lean on previously learned clauses, so their
        conflict count can undershoot what a fresh solver needs; storing
        that optimistic cost would break cached-vs-uncached outcome
        identity under small budgets.  Sessions consult but never store."""
        x, y = bv("x"), bv("y")
        prefix = t.eq(y, t.mul(x, x))
        delta = t.eq(t.bvand(t.mul(y, x), const(7)), const(5))
        cache = QueryCache()
        first_solver = Solver(cache=cache)
        with first_solver.session([prefix]) as session:
            first = session.check(delta)
        assert first is not Result.UNKNOWN
        assert cache.stats.stores == 0
        # A second solver sharing the cache re-solves fresh and agrees.
        second_solver = Solver(cache=cache)
        assert second_solver.check_sat(t.and_(prefix, delta)) is first
        assert second_solver.stats.cache_hits == 0
        # The fresh run's answer *does* land in the cache.
        assert cache.stats.stores == 1

    def test_unknown_not_cached(self):
        x, y = bv("x"), bv("y")
        # A multiplication equation with a tiny budget: UNKNOWN.
        goal = t.eq(t.mul(t.mul(x, y), t.add(x, y)), const(123))
        prefix = t.not_(t.eq(x, y))
        cache = QueryCache()
        starved = Solver(conflict_budget=1, cache=cache)
        with starved.session([prefix]) as session:
            outcome = session.check(goal)
        if outcome is Result.UNKNOWN:
            assert cache.stats.stores == 0


class TestSyncPointRetraction:
    """Assumption sets ride per sync point; retracting one must fully
    release its constraints for every later point."""

    def test_retracted_assumptions_do_not_constrain_later_points(self):
        x = bv("x")
        low = t.ult(x, const(5))
        high = t.ult(const(10), x)
        solver = Solver()
        with solver.session() as session:
            # Point 1: under "x < 5" the goal "x > 10" is UNSAT — and the
            # refutation happens at assumption levels, the case where a
            # careless learner would bake "x < 5" into the clause DB.
            assert session.check(high, assumptions=[low]) is Result.UNSAT
            # Point 2: "x < 5" is retracted; x = 200 must be reachable.
            assert session.check(high) is Result.SAT
            assert (
                session.check(t.eq(x, const(200)), assumptions=[high])
                is Result.SAT
            )
            # Point 3: revisit point 1's assumption set — still UNSAT.
            assert session.check(high, assumptions=[low]) is Result.UNSAT

    def test_alternating_contradictory_points(self):
        x = bv("x")
        even = t.eq(t.extract(x, 0, 0), t.bv_const(0, 1))
        odd = t.eq(t.extract(x, 0, 0), t.bv_const(1, 1))
        solver = Solver()
        with solver.session() as session:
            for _ in range(3):
                assert session.check(odd, assumptions=[even]) is Result.UNSAT
                assert session.check(even, assumptions=[even]) is Result.SAT
                assert session.check(even, assumptions=[odd]) is Result.UNSAT
                assert session.check(odd, assumptions=[odd]) is Result.SAT


class TestAssumptionOrderCanonicalization:
    """Permuted assumption sets are one query: one memo key, one verdict."""

    def test_permuted_assumptions_hit_same_memo_entry(self):
        x, y = bv("x"), bv("y")
        a = t.ult(x, const(50))
        b = t.ult(y, x)
        delta = t.eq(t.bvand(t.add(x, y), const(31)), const(17))
        solver = Solver()
        with solver.session() as session:
            first = session.check(delta, assumptions=(a, b))
            fast_before = solver.stats.fast_path
            second = session.check(delta, assumptions=(b, a))
        assert second is first
        assert solver.stats.fast_path == fast_before + 1  # memo hit

    def test_permuted_assumptions_share_query_cache_entry(self):
        """Sessions consult (but never store to) the shared cache, and
        permuted assumption sets canonicalize to the one cache key a fresh
        solve of the same conjunction stored under."""
        x, y = bv("x"), bv("y")
        a = t.ult(x, const(50))
        b = t.ult(y, x)
        delta = t.eq(t.bvand(t.mul(x, y), const(31)), const(17))
        cache = QueryCache()
        seeder = Solver(cache=cache)
        first = seeder.check_sat(t.conj([a, b, delta]))
        assert cache.stats.stores == 1
        for order in ((a, b), (b, a)):
            solver = Solver(cache=cache)
            with solver.session() as session:
                assert session.check(delta, assumptions=order) is first
            assert solver.stats.cache_hits == 1
        assert cache.stats.stores == 1  # the sessions added nothing

    def test_order_and_duplicates_normalize(self):
        from repro.smt.solver import canonical_assumption_order

        x = bv("x")
        a = t.ult(x, const(50))
        b = t.ult(const(10), x)
        assert canonical_assumption_order([a, b, a]) == (
            canonical_assumption_order([b, a, b])
        )


class TestGenerationRestart:
    """A campaign core past its ``max_vars`` ceiling restarts cleanly."""

    def test_max_vars_triggers_reset_and_keeps_verdicts(self):
        from repro.smt.solver import SessionCore

        x, y = bv("x"), bv("y")
        core = SessionCore(scope="campaign", max_vars=40)
        deltas = [
            t.eq(t.mul(x, t.add(x, const(1))), const(2 * i + 1))
            for i in range(4)
        ]
        verdicts = []
        for delta in deltas:  # one session per "function", shared core
            solver = Solver()
            with solver.session(core=core) as session:
                verdicts.append(session.check(delta))
        # Products of consecutive integers are even: all UNSAT, across
        # at least one generation restart.
        assert verdicts == [Result.UNSAT] * len(deltas)
        assert core.resets > 0

    def test_zero_ceiling_disables_restarts(self):
        from repro.smt.solver import SessionCore

        x = bv("x")
        core = SessionCore(scope="campaign", max_vars=0)
        solver = Solver()
        with solver.session(core=core) as session:
            for value in (3, 7, 11):
                assert (
                    session.check(t.eq(t.mul(x, x), const(value * value)))
                    is Result.SAT
                )
        assert core.resets == 0


class TestSessionEquivalenceSweep:
    """Randomized-ish structural sweep: session == fresh on many goals."""

    @pytest.mark.parametrize("seed", range(6))
    def test_sweep(self, seed):
        x, y = bv("x"), bv("y")
        prefix = t.eq(
            t.add(t.mul(x, const(seed + 2)), y), const(17 * (seed + 1))
        )
        deltas = [
            t.ult(x, const((seed * 37 + 11) & 0xFF)),
            t.eq(t.bvxor(x, y), const((seed * 91 + 3) & 0xFF)),
            t.slt(y, t.add(x, const(seed))),
            t.eq(t.mul(x, y), const((seed * 53) & 0xFF)),
        ]
        fresh = [
            Solver().check_sat(t.and_(prefix, delta)) for delta in deltas
        ]
        solver = Solver()
        with solver.session([prefix]) as session:
            incremental = [session.check(delta) for delta in deltas]
        assert incremental == fresh
