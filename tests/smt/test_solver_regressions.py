"""Regression tests for solver/cache bugs found by inspection (ISSUE 2).

Each test documents a bug that the differential fuzzing harness
(:mod:`repro.fuzz`) now guards against systematically; all three failed
before their fixes.
"""

import pytest

from repro.smt import QueryCache, Result, Solver, t
from repro.smt import solver as solver_mod
from repro.smt.eval import EvalError


class TestTrivialTrueModel:
    """check_sat(need_model=True) must populate a model when the goal
    simplifies to TRUE (previously returned SAT with last_model=None)."""

    def test_literal_true(self):
        solver = Solver()
        assert solver.check_sat(t.TRUE, need_model=True) is Result.SAT
        assert solver.last_model is not None

    def test_goal_simplifying_to_true(self):
        solver = Solver()
        a = t.bv_var("a", 32)
        goal = t.eq(t.add(a, t.zero(32)), a)  # simplifies to TRUE
        assert solver.check_sat(goal, need_model=True) is Result.SAT
        assert solver.stats.fast_path == 1  # stayed on the fast path
        model = solver.last_model
        assert model is not None
        # The witness must actually satisfy the (trivially true) goal and
        # be readable through arbitrary terms, like a bit-blasted model.
        assert model.eval_bool(goal) is True
        assert model.eval_bv(a) == 0
        assert model.eval_bool(t.bool_var("p")) is False
        assert model.eval_bv(t.select("mem", t.bv_const(3, 32))) == 0

    def test_without_need_model_unchanged(self):
        solver = Solver()
        assert solver.check_sat(t.TRUE) is Result.SAT
        assert solver.last_model is None


class TestCacheMissAccounting:
    """A cache entry bypassed only because ``need_model`` was requested is
    not a miss; it must land in ``cache_hits_unused``."""

    def test_shared_entry_rejected_for_model_is_not_a_miss(self):
        cache = QueryCache()
        a = t.bv_var("acc", 8)
        goal = t.ult(a, t.bv_const(10, 8))
        assert Solver(cache=cache).check_sat(goal) is Result.SAT
        solver = Solver(cache=cache)
        assert solver.check_sat(goal, need_model=True) is Result.SAT
        assert solver.last_model is not None
        assert solver.stats.cache_misses == 0
        assert solver.stats.cache_hits_unused == 1

    def test_memo_fallthrough_for_model_is_not_a_miss(self):
        cache = QueryCache()
        solver = Solver(cache=cache)
        a = t.bv_var("acc2", 8)
        goal = t.ult(a, t.bv_const(10, 8))
        assert solver.check_sat(goal) is Result.SAT
        misses_before = solver.stats.cache_misses
        assert solver.check_sat(goal, need_model=True) is Result.SAT
        assert solver.stats.cache_misses == misses_before
        assert solver.stats.cache_hits_unused == 1

    def test_true_miss_still_counted(self):
        cache = QueryCache()
        solver = Solver(cache=cache)
        a = t.bv_var("acc3", 8)
        assert solver.check_sat(t.ult(a, t.bv_const(10, 8))) is Result.SAT
        assert solver.stats.cache_misses == 1
        assert solver.stats.cache_hits_unused == 0

    def test_merge_carries_hits_unused(self):
        left = solver_mod.QueryStats(cache_hits_unused=2)
        right = solver_mod.QueryStats(cache_hits_unused=3)
        left.merge(right)
        assert left.cache_hits_unused == 5


class TestRandomWitnessRecovery:
    """_random_witness must try the next seed after an EvalError, not give
    up on all remaining assignments."""

    def test_later_seed_tried_after_eval_error(self, monkeypatch):
        goal = t.eq(t.bv_var("rw", 8), t.bv_const(1, 8))

        from repro.smt import eval as eval_mod

        original = eval_mod.evaluate
        calls = []

        def flaky_evaluate(term, env, select_handler=None):
            calls.append(dict(env))
            if len(calls) == 1:
                # Simulate an assignment whose evaluation path fails.
                raise EvalError("injected failure on the first assignment")
            return original(term, env, select_handler)

        monkeypatch.setattr(eval_mod, "evaluate", flaky_evaluate)
        # Seed 1 assigns 1 to every bitvector variable, satisfying rw == 1;
        # before the fix the injected seed-0 failure aborted the search.
        assert solver_mod._random_witness(goal) is True
        assert len(calls) >= 2

    def test_all_seeds_failing_is_still_false(self, monkeypatch):
        from repro.smt import eval as eval_mod

        def always_fails(term, env, select_handler=None):
            raise EvalError("injected")

        monkeypatch.setattr(eval_mod, "evaluate", always_fails)
        goal = t.eq(t.bv_var("rw2", 8), t.bv_const(1, 8))
        assert solver_mod._random_witness(goal) is False


class TestStoreRefreshesRecency:
    """QueryCache.store must refresh LRU recency even when an
    equal-or-better entry already exists."""

    def test_restore_protects_hot_entry_from_eviction(self):
        cache = QueryCache(max_entries=2)
        hot = t.eq(t.bv_var("h", 8), t.bv_const(1, 8))
        cold = t.eq(t.bv_var("c", 8), t.bv_const(2, 8))
        new = t.eq(t.bv_var("n", 8), t.bv_const(3, 8))
        cache.store(hot, Result.SAT, 5)
        cache.store(cold, Result.SAT, 5)
        # Re-store `hot` at the same cost: entry kept, recency refreshed.
        cache.store(hot, Result.SAT, 5)
        cache.store(new, Result.SAT, 5)  # evicts the LRU entry
        assert cache.lookup(hot, None) is Result.SAT  # survived (was hot)
        assert cache.lookup(cold, None) is None  # evicted

    def test_restore_does_not_clobber_cheaper_cost(self):
        cache = QueryCache()
        goal = t.eq(t.bv_var("k", 8), t.bv_const(1, 8))
        cache.store(goal, Result.SAT, 2)
        cache.store(goal, Result.SAT, 900)
        assert cache.lookup(goal, 2) is Result.SAT


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
