"""Arithmetic edge cases in the evaluator, checked against an independent
Python big-int reference.

The fuzzing generator's corner palette (``_corner_values``) drives operand
selection, so the cases the differential campaign stresses — ``sdiv``/
``srem`` at INT_MIN/-1 and with mixed signs, shifts at and beyond the
width, division by zero, width-1 vectors — are pinned down here as plain
unit tests.  The reference implementations deliberately use a different
formulation than ``repro.smt.eval`` (``Fraction``-based truncating
division, Python's unbounded arithmetic shift) so agreement is meaningful.
"""

import random
from fractions import Fraction

import pytest

from repro.fuzz.generator import _corner_values
from repro.smt import terms as t
from repro.smt.eval import evaluate

WIDTHS = (1, 8, 16, 32)


def _signed(value, width):
    return value - (1 << width) if value >> (width - 1) else value


def _trunc_div(a, b):
    """C-style division: truncate toward zero (exact, via Fraction)."""
    q = Fraction(a, b)
    return -((-q).__floor__()) if q < 0 else q.__floor__()


def _reference(op, a, b, width):
    mask = (1 << width) - 1
    sa, sb = _signed(a, width), _signed(b, width)
    if op == "add":
        return (a + b) & mask
    if op == "sub":
        return (a - b) & mask
    if op == "mul":
        return (a * b) & mask
    if op == "udiv":
        return mask if b == 0 else a // b
    if op == "urem":
        return a if b == 0 else a % b
    if op == "sdiv":
        # LLVM leaves this UB; the repro stack defines it like x86 would
        # saturate: -1 for non-negative dividends, +1 otherwise.
        if sb == 0:
            return (-1 if sa >= 0 else 1) & mask
        return _trunc_div(sa, sb) & mask
    if op == "srem":
        if sb == 0:
            return a
        return (sa - sb * _trunc_div(sa, sb)) & mask
    if op == "bvand":
        return a & b
    if op == "bvor":
        return a | b
    if op == "bvxor":
        return a ^ b
    if op == "shl":
        return 0 if b >= width else (a << b) & mask
    if op == "lshr":
        return a >> b
    if op == "ashr":
        # Python's >> on negative ints is already an unbounded arithmetic
        # shift (saturating at -1), so no width clamp is needed.
        return (sa >> b) & mask
    raise AssertionError(op)


_OPS = {
    "add": t.add,
    "sub": t.sub,
    "mul": t.mul,
    "udiv": t.udiv,
    "urem": t.urem,
    "sdiv": t.sdiv,
    "srem": t.srem,
    "bvand": t.bvand,
    "bvor": t.bvor,
    "bvxor": t.bvxor,
    "shl": t.shl,
    "lshr": t.lshr,
    "ashr": t.ashr,
}


def _eval_op(op, a, b, width):
    """Evaluate through variables so the evaluator (not the constant
    folder) computes the result."""
    term = _OPS[op](t.bv_var("a", width), t.bv_var("b", width))
    return evaluate(term, {"a": a, "b": b})


def _fold_op(op, a, b, width):
    """The smart constructors' constant folder, for cross-checking."""
    return _OPS[op](t.bv_const(a, width), t.bv_const(b, width))


class TestSignedDivisionCorners:
    @pytest.mark.parametrize("width", WIDTHS[1:])
    def test_int_min_divided_by_minus_one_wraps(self, width):
        int_min = 1 << (width - 1)
        minus_one = t.mask(width)
        # |INT_MIN| is unrepresentable; two's-complement wraps to INT_MIN.
        assert _eval_op("sdiv", int_min, minus_one, width) == int_min
        assert _eval_op("srem", int_min, minus_one, width) == 0

    @pytest.mark.parametrize("width", WIDTHS[1:])
    def test_mixed_sign_division_truncates_toward_zero(self, width):
        seven = 7 % (1 << width)
        minus_seven = (-7) % (1 << width)
        two = 2
        minus_two = (-2) % (1 << width)
        # -7 / 2 == -3 (not -4: no floor), and the sign identities hold.
        assert _signed(_eval_op("sdiv", minus_seven, two, width), width) == -3
        assert _signed(_eval_op("sdiv", seven, minus_two, width), width) == -3
        assert _signed(_eval_op("sdiv", minus_seven, minus_two, width), width) == 3
        # remainder takes the dividend's sign
        assert _signed(_eval_op("srem", minus_seven, two, width), width) == -1
        assert _signed(_eval_op("srem", seven, minus_two, width), width) == 1

    @pytest.mark.parametrize("op", ["udiv", "urem", "sdiv", "srem"])
    @pytest.mark.parametrize("width", WIDTHS)
    def test_division_by_zero_is_total(self, op, width):
        for a in _corner_values(width):
            a %= 1 << width
            assert _eval_op(op, a, 0, width) == _reference(op, a, 0, width)


class TestShiftCorners:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_shift_amounts_at_and_beyond_width(self, width):
        for a in (0, 1, t.mask(width), 1 << (width - 1)):
            for shift in (width - 1, width, width + 1, t.mask(width)):
                shift %= 1 << width
                for op in ("shl", "lshr", "ashr"):
                    assert _eval_op(op, a, shift, width) == _reference(
                        op, a, shift, width
                    ), (op, a, shift, width)

    def test_ashr_replicates_the_sign_bit(self):
        assert _eval_op("ashr", 0x80, 200, 8) == 0xFF
        assert _eval_op("ashr", 0x7F, 200, 8) == 0


class TestWidthOne:
    """Every operation, exhaustively, on 1-bit vectors."""

    @pytest.mark.parametrize("op", sorted(_OPS))
    def test_exhaustive(self, op):
        for a in (0, 1):
            for b in (0, 1):
                assert _eval_op(op, a, b, 1) == _reference(op, a, b, 1), (op, a, b)


class TestCornerPaletteSweep:
    """Generator-driven sweep: every op over the corner palette plus
    pseudorandom operands, evaluator vs reference vs constant folder."""

    @pytest.mark.parametrize("op", sorted(_OPS))
    @pytest.mark.parametrize("width", WIDTHS)
    def test_corner_pairs(self, op, width):
        rng = random.Random(hash((op, width)) & 0xFFFF)
        values = [v % (1 << width) for v in _corner_values(width)]
        values += [rng.getrandbits(width) for _ in range(4)]
        for a in values:
            for b in values:
                expected = _reference(op, a, b, width)
                assert _eval_op(op, a, b, width) == expected, (op, a, b, width)
                folded = _fold_op(op, a, b, width)
                if folded.is_const():
                    assert folded.value == expected, (op, a, b, width)
