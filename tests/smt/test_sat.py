"""Unit tests for the CDCL SAT solver."""

import itertools

import pytest

from repro.smt.sat import SatResult, SatSolver, luby


class TestLuby:
    def test_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(len(expected))] == expected


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert SatSolver().solve() is SatResult.SAT

    def test_single_unit(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.solve() is SatResult.SAT
        assert solver.model_value(1) is True

    def test_contradictory_units(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is SatResult.UNSAT

    def test_empty_clause_is_unsat(self):
        solver = SatSolver()
        solver.add_clause([])
        assert solver.solve() is SatResult.UNSAT

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.solve() is SatResult.SAT

    def test_duplicate_literals_deduped(self):
        solver = SatSolver()
        solver.add_clause([1, 1, 2])
        solver.add_clause([-1])
        assert solver.solve() is SatResult.SAT
        assert solver.model_value(2) is True

    def test_simple_implication_chain(self):
        solver = SatSolver()
        solver.add_clause([1])
        for var in range(1, 50):
            solver.add_clause([-var, var + 1])
        assert solver.solve() is SatResult.SAT
        assert solver.model_value(50) is True

    def test_model_satisfies_clauses(self):
        clauses = [[1, 2, -3], [-1, 3], [-2, 3], [1, -2], [2, -1, 3]]
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(list(clause))
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        for clause in clauses:
            assert any(
                model[abs(lit)] == (lit > 0) for lit in clause
            ), f"clause {clause} unsatisfied"


def pigeonhole_clauses(holes: int) -> list[list[int]]:
    """PHP(holes+1, holes): unsatisfiable pigeonhole principle."""
    pigeons = holes + 1

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    clauses = [
        [var(p, h) for h in range(holes)] for p in range(pigeons)
    ]
    for hole in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            clauses.append([-var(p1, hole), -var(p2, hole)])
    return clauses


class TestHardInstances:
    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        solver = SatSolver()
        for clause in pigeonhole_clauses(holes):
            solver.add_clause(clause)
        assert solver.solve() is SatResult.UNSAT

    def test_pigeonhole_learns_clauses(self):
        solver = SatSolver()
        for clause in pigeonhole_clauses(5):
            solver.add_clause(clause)
        solver.solve()
        assert solver.stats.conflicts > 0
        assert solver.stats.learned > 0

    def test_random_3sat_satisfiable_instance(self):
        # A fixed, hand-checked satisfiable instance (assignment: all True).
        solver = SatSolver()
        clauses = [[1, -2, 3], [2, 3, -4], [4, 1, 2], [-1, 2, 4], [3, 4, -2]]
        for clause in clauses:
            solver.add_clause(list(clause))
        assert solver.solve() is SatResult.SAT


class TestAssumptions:
    def _xor_problem(self) -> SatSolver:
        # 3 <-> (1 xor 2)
        solver = SatSolver()
        solver.add_clause([-3, 1, 2])
        solver.add_clause([-3, -1, -2])
        solver.add_clause([3, -1, 2])
        solver.add_clause([3, 1, -2])
        return solver

    def test_assumptions_constrain_search(self):
        solver = self._xor_problem()
        assert solver.solve(assumptions=[1, 2, 3]) is SatResult.UNSAT

    def test_assumptions_satisfiable(self):
        solver = self._xor_problem()
        assert solver.solve(assumptions=[1, -2, 3]) is SatResult.SAT
        assert solver.model_value(1) is True
        assert solver.model_value(2) is False

    def test_solver_reusable_across_assumption_sets(self):
        solver = self._xor_problem()
        assert solver.solve(assumptions=[1, 2, 3]) is SatResult.UNSAT
        assert solver.solve(assumptions=[1, -2, 3]) is SatResult.SAT
        assert solver.solve(assumptions=[-1, -2, 3]) is SatResult.UNSAT

    def test_conflicting_assumption_with_unit(self):
        solver = SatSolver()
        solver.add_clause([1])
        assert solver.solve(assumptions=[-1]) is SatResult.UNSAT
        assert solver.solve(assumptions=[1]) is SatResult.SAT


class TestBudget:
    def test_budget_exhaustion_returns_unknown(self):
        solver = SatSolver()
        for clause in pigeonhole_clauses(7):
            solver.add_clause(clause)
        assert solver.solve(conflict_budget=5) is SatResult.UNKNOWN

    def test_generous_budget_still_solves(self):
        solver = SatSolver()
        for clause in pigeonhole_clauses(3):
            solver.add_clause(clause)
        assert solver.solve(conflict_budget=100_000) is SatResult.UNSAT


class TestEliminationInprocessing:
    """BCE + bounded variable elimination (``inprocess(eliminate=True)``)."""

    def _random_cnf(self, rng, nvars, nclauses):
        clauses = []
        for _ in range(nclauses):
            size = rng.randint(1, 4)
            chosen = rng.sample(range(1, nvars + 1), min(size, nvars))
            clauses.append(
                [v if rng.random() < 0.5 else -v for v in chosen]
            )
        return clauses

    def _fresh(self, nvars, clauses):
        solver = SatSolver()
        while solver._num_vars < nvars:
            solver.new_var()
        for clause in clauses:
            solver.add_clause(list(clause))
        return solver

    def test_elimination_preserves_verdict_and_models(self):
        import random

        rng = random.Random(20210404)
        for _ in range(120):
            nvars = rng.randint(3, 12)
            clauses = self._random_cnf(rng, nvars, rng.randint(nvars, 4 * nvars))
            plain = self._fresh(nvars, clauses)
            treated = self._fresh(nvars, clauses)
            treated.inprocess(50_000, eliminate=True)
            expected = plain.solve(conflict_budget=100_000)
            got = treated.solve(conflict_budget=100_000)
            assert got is expected, clauses
            if got is SatResult.SAT:
                # _extend_model must reconstruct eliminated variables so
                # the model satisfies every *original* clause.
                for clause in clauses:
                    assert any(
                        treated.model_value(abs(lit)) is (lit > 0)
                        for lit in clause
                    ), (clauses, clause)

    def test_stale_occurrence_regression(self):
        """Chained eliminations: eliminating v creates resolvents over w;
        a later elimination of w must resolve against those resolvents
        too, or constraints are silently lost (historically flipped the
        UNSAT multiplier-equivalence miters to SAT at zero conflicts)."""
        from repro.smt import terms as t
        from repro.smt.bitblast import BitBlaster

        def shiftadd(x, c, width):
            acc = t.bv_const(0, width)
            bit = 0
            while c:
                if c & 1:
                    acc = t.add(acc, t.shl(x, t.bv_const(bit, width)))
                c >>= 1
                bit += 1
            return acc

        for width, c in [(4, 0x5), (5, 0xB), (6, 0x2D)]:
            x = t.bv_var("x", width)
            miter = t.ne(
                t.mul(x, t.bv_const(c, width)), shiftadd(x, c, width)
            )
            solver = SatSolver()
            blaster = BitBlaster(solver)
            blaster.assert_term(miter)
            solver.inprocess(50_000, eliminate=True)
            assert solver.stats.vars_eliminated > 0
            assert solver.solve(conflict_budget=100_000) is SatResult.UNSAT

    def test_counters_populate(self):
        import random

        rng = random.Random(7)
        clauses = self._random_cnf(rng, 12, 40)
        solver = self._fresh(12, clauses)
        solver.inprocess(50_000, eliminate=True)
        assert solver.stats.vars_eliminated >= 0
        assert solver.stats.clauses_blocked >= 0

    def test_sealed_solver_rejects_new_clauses(self):
        solver = self._fresh(4, [[1, 2], [-1, 3], [-2, -3], [3, 4], [-3, -4]])
        solver.inprocess(50_000, eliminate=True)
        if solver.stats.vars_eliminated or solver.stats.clauses_blocked:
            with pytest.raises(RuntimeError, match="sealed"):
                solver.add_clause([1, 4])

    def test_default_inprocess_does_not_eliminate(self):
        solver = self._fresh(4, [[1, 2], [-1, 3], [-2, -3], [3, 4]])
        solver.inprocess(50_000)
        assert solver.stats.vars_eliminated == 0
        assert solver.stats.clauses_blocked == 0
