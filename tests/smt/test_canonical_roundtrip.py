"""``from_canonical`` must invert ``canonical`` exactly (interned identity),
so shrunk fuzzing counterexamples replay in a fresh process."""

import pytest

from repro.fuzz.generator import GenConfig, TermGenerator
from repro.smt import terms as t
from repro.smt.printer import canonical, from_canonical


class TestRoundTrip:
    def test_handcrafted_terms(self):
        x = t.bv_var("x", 32)
        samples = [
            t.TRUE,
            t.FALSE,
            t.bv_const(0xDEADBEEF, 32),
            x,
            t.bool_var("p"),
            t.extract(t.add(x, t.bv_const(1, 32)), 15, 8),
            t.sext(t.bv_var("y", 8), 32),
            t.select("mem", t.add(x, x), 8),
            t.ite(t.bool_var("p"), t.concat(t.bv_var("y", 8), t.bv_var("z", 8)),
                  t.bvnot(t.bv_var("w", 16))),
            t.implies(t.ult(x, t.bv_const(10, 32)), t.eq(x, t.zero(32))),
        ]
        for sample in samples:
            assert from_canonical(canonical(sample)) is sample

    def test_generated_terms(self):
        generator = TermGenerator(77, GenConfig(allow_select=True))
        for _ in range(100):
            formula = generator.formula()
            assert from_canonical(canonical(formula)) is formula
            term = generator.bv_term(16)
            assert from_canonical(canonical(term)) is term

    def test_shared_subterms_stay_shared(self):
        x = t.bv_var("x", 8)
        shared = t.add(x, t.bv_const(1, 8))
        term = t.mul(shared, shared)
        text = canonical(term)
        # the DAG printing mentions the shared node once
        assert text.count("add:") == 1
        assert from_canonical(text) is term


class TestMalformedInput:
    def test_empty(self):
        with pytest.raises(ValueError):
            from_canonical("")

    def test_garbage_node(self):
        with pytest.raises(ValueError):
            from_canonical("add+i8[](0)")

    def test_forward_reference(self):
        with pytest.raises(ValueError):
            from_canonical("add:i8[](0,1)")
