"""Property-based tests of the SMT stack with hypothesis.

Three core invariants:

1. *Evaluation agreement*: the concrete evaluator, the simplifier, and the
   bit-blaster must all agree on the meaning of random terms.
2. *Model soundness*: any model the solver produces satisfies the formula.
3. *Folding soundness*: smart-constructor folding never changes meaning.
"""

from hypothesis import given, settings, strategies as st

from repro.smt import Result, Solver, simplify, t
from repro.smt.eval import evaluate

WIDTH = 8

_names = ("v0", "v1", "v2")


def _leaf(draw):
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return t.bv_const(draw(st.integers(0, 255)), WIDTH)
    return t.bv_var(_names[choice - 1], WIDTH)


_BINOPS = [
    t.add,
    t.sub,
    t.mul,
    t.udiv,
    t.urem,
    t.sdiv,
    t.srem,
    t.bvand,
    t.bvor,
    t.bvxor,
    t.shl,
    t.lshr,
    t.ashr,
]

_UNOPS = [t.neg, t.bvnot]


@st.composite
def bv_terms(draw, depth=3):
    if depth == 0:
        return _leaf(draw)
    choice = draw(st.integers(0, 5))
    if choice <= 1:
        return _leaf(draw)
    if choice == 2:
        op = draw(st.sampled_from(_UNOPS))
        return op(draw(bv_terms(depth=depth - 1)))
    if choice == 3:
        cond = t.ult(
            draw(bv_terms(depth=depth - 1)), draw(bv_terms(depth=depth - 1))
        )
        return t.ite(
            cond, draw(bv_terms(depth=depth - 1)), draw(bv_terms(depth=depth - 1))
        )
    op = draw(st.sampled_from(_BINOPS))
    return op(draw(bv_terms(depth=depth - 1)), draw(bv_terms(depth=depth - 1)))


@st.composite
def bool_terms(draw, depth=3):
    pred = draw(st.sampled_from([t.eq, t.ult, t.slt, t.ule, t.sle]))
    return pred(draw(bv_terms(depth=depth)), draw(bv_terms(depth=depth)))


envs = st.fixed_dictionaries({name: st.integers(0, 255) for name in _names})


class TestSimplifyPreservesMeaning:
    @given(term=bv_terms(), env=envs)
    @settings(max_examples=300, deadline=None)
    def test_bv_simplify_agrees_with_eval(self, term, env):
        assert evaluate(simplify(term), env) == evaluate(term, env)

    @given(term=bool_terms(), env=envs)
    @settings(max_examples=300, deadline=None)
    def test_bool_simplify_agrees_with_eval(self, term, env):
        assert evaluate(simplify(term), env) == evaluate(term, env)


class TestSolverSoundness:
    @given(term=bool_terms(depth=2))
    @settings(max_examples=60, deadline=None)
    def test_model_satisfies_formula(self, term):
        solver = Solver()
        outcome = solver.check_sat(term)
        if outcome is Result.SAT and solver.last_model is not None:
            env = {
                var.name: solver.last_model.eval_bv(var)
                for var in t.free_vars(term)
            }
            assert evaluate(term, env) is True

    @given(term=bool_terms(depth=2), env=envs)
    @settings(max_examples=60, deadline=None)
    def test_unsat_has_no_witness(self, term, env):
        solver = Solver()
        if solver.check_sat(term) is Result.UNSAT:
            assert evaluate(term, env) is False


class TestBitblastAgreesWithEval:
    @given(term=bv_terms(depth=2), env=envs)
    @settings(max_examples=80, deadline=None)
    def test_forced_environment_forces_value(self, term, env):
        """Pin the variables to env via equalities; the solver's model of the
        term must equal concrete evaluation."""
        solver = Solver()
        pins = [
            t.eq(t.bv_var(name, WIDTH), t.bv_const(value, WIDTH))
            for name, value in env.items()
        ]
        probe = t.bv_var("__probe", WIDTH)
        goal = t.and_(t.eq(probe, term), *pins)
        assert solver.check_sat(goal, need_model=True) is Result.SAT
        assert solver.last_model.eval_bv(probe) == evaluate(term, env)
