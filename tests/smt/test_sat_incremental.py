"""Incremental SAT regression tests: assumptions, unsat cores, and the
classic learned-clause-contamination bug.

The MiniSat contract under test: assumptions are pseudo-decisions, so
every clause a call learns is implied by the clause database *alone* —
keeping learned clauses (including root-implied units parked while the
trail sat inside the assumption prefix) must never change the answer of a
later call that drops or flips an assumption.
"""

from repro.smt.sat import SatResult, SatSolver


def fresh_vars(solver, count):
    return [solver.new_var() for _ in range(count)]


class TestAssumptions:
    def test_sat_under_assumptions(self):
        solver = SatSolver()
        a, b = fresh_vars(solver, 2)
        solver.add_clause([a, b])
        assert solver.solve(assumptions=[-a]) is SatResult.SAT
        assert solver.model_value(b) is True
        assert solver.core is None

    def test_unsat_under_assumptions_sat_without(self):
        solver = SatSolver()
        a, b = fresh_vars(solver, 2)
        solver.add_clause([-a, b])
        assert solver.solve(assumptions=[a, -b]) is SatResult.UNSAT
        # Dropping the assumptions: the clause set itself is satisfiable.
        assert solver.solve() is SatResult.SAT
        assert solver.solve(assumptions=[a]) is SatResult.SAT
        assert solver.model_value(b) is True

    def test_flip_assumption_after_unsat(self):
        solver = SatSolver()
        a, b, c = fresh_vars(solver, 3)
        solver.add_clause([-a, c])
        solver.add_clause([-b, -c])
        assert solver.solve(assumptions=[a, b]) is SatResult.UNSAT
        assert solver.solve(assumptions=[a, -b]) is SatResult.SAT
        assert solver.solve(assumptions=[-a, b]) is SatResult.SAT

    def test_contradictory_assumptions(self):
        solver = SatSolver()
        (a,) = fresh_vars(solver, 1)
        assert solver.solve(assumptions=[a, -a]) is SatResult.UNSAT
        assert solver.core  # a or -a must be blamed
        assert set(solver.core) <= {a, -a}
        assert solver.solve() is SatResult.SAT


class TestUnsatCore:
    def test_core_subset_of_assumptions(self):
        solver = SatSolver()
        a, b, c, d = fresh_vars(solver, 4)
        solver.add_clause([-a, -b])  # a and b conflict
        result = solver.solve(assumptions=[a, b, c, d])
        assert result is SatResult.UNSAT
        assert set(solver.core) <= {a, b, c, d}
        # c and d are irrelevant to the refutation.
        assert c not in set(solver.core)
        assert d not in set(solver.core)
        assert {a, b} & set(solver.core)

    def test_core_from_chain(self):
        solver = SatSolver()
        a, b, c, goal = fresh_vars(solver, 4)
        solver.add_clause([-a, b])
        solver.add_clause([-b, c])
        solver.add_clause([-c, -goal])
        result = solver.solve(assumptions=[a, goal])
        assert result is SatResult.UNSAT
        core = set(solver.core)
        assert core <= {a, goal}
        assert core  # the refutation needs at least one assumption

    def test_core_empty_when_clause_set_unsat(self):
        solver = SatSolver()
        (a,) = fresh_vars(solver, 1)
        solver.add_clause([a])
        solver.add_clause([-a])
        assert solver.solve(assumptions=[a]) is SatResult.UNSAT
        assert solver.core == []

    def test_core_replay_is_unsat(self):
        """Asserting the core as units must itself be UNSAT (core validity)."""
        solver = SatSolver()
        variables = fresh_vars(solver, 6)
        a, b, c, d, e, f = variables
        solver.add_clause([-a, -b, -c])
        solver.add_clause([-d, e])
        assert solver.solve(assumptions=[a, b, c, d, f]) is SatResult.UNSAT
        core = list(solver.core)
        replay = SatSolver()
        replay.ensure_vars(max(abs(x) for x in core))
        for clause in ([-a, -b, -c], [-d, e]):
            replay.ensure_vars(max(abs(x) for x in clause))
            replay.add_clause(clause)
        for lit in core:
            replay.add_clause([lit])
        assert replay.solve() is SatResult.UNSAT


class TestLearnedClausePersistence:
    def test_learned_clauses_survive_without_contamination(self):
        """The classic incremental-SAT bug: clauses learned under an
        assumption must not constrain a later call that drops it."""
        solver = SatSolver()
        n = 8
        xs = fresh_vars(solver, n)
        trigger = solver.new_var()
        # Under `trigger`, a small pigeonhole-ish contradiction over xs.
        for i in range(n - 1):
            solver.add_clause([-trigger, xs[i], xs[i + 1]])
            solver.add_clause([-trigger, -xs[i], -xs[i + 1]])
        solver.add_clause([-trigger, xs[0], xs[2]])
        solver.add_clause([-trigger, -xs[0], -xs[2]])
        first = solver.solve(assumptions=[trigger])
        # Whatever the verdict under the assumption, dropping it must
        # leave a satisfiable problem (set trigger false, xs free).
        assert first in (SatResult.SAT, SatResult.UNSAT)
        learned_after_first = solver.stats.learned
        assert solver.solve() is SatResult.SAT
        assert solver.solve(assumptions=[-trigger]) is SatResult.SAT
        # Learned clauses were retained, not wiped, across the calls.
        assert solver.stats.learned >= learned_after_first

    def test_unit_learned_under_assumptions_survives(self):
        """A unit learned while the trail is inside the assumption prefix
        is parked and re-asserted at the next root visit — not lost, and
        not mis-assigned at assumption level."""
        solver = SatSolver()
        a, b, c = fresh_vars(solver, 3)
        # b is forced false by the clause set (two binary clauses), but
        # only via search once `a` raises the decision level.
        solver.add_clause([-b, c])
        solver.add_clause([-b, -c])
        assert solver.solve(assumptions=[a, b]) is SatResult.UNSAT
        assert set(solver.core) == {b}
        # -b is now root-implied; later calls see it immediately.
        assert solver.solve(assumptions=[b]) is SatResult.UNSAT
        assert solver.solve(assumptions=[-b]) is SatResult.SAT
        assert solver.solve() is SatResult.SAT
        assert solver.model_value(b) is False

    def test_interleaved_clause_addition(self):
        solver = SatSolver()
        a, b, c = fresh_vars(solver, 3)
        solver.add_clause([a, b])
        assert solver.solve(assumptions=[-a]) is SatResult.SAT
        # Add clauses between calls (incremental use).
        solver.add_clause([-b, c])
        assert solver.solve(assumptions=[-a]) is SatResult.SAT
        assert solver.model_value(c) is True
        solver.add_clause([-c])
        assert solver.solve(assumptions=[-a]) is SatResult.UNSAT
        assert set(solver.core) == {-a}
        assert solver.solve() is SatResult.SAT

    def test_many_calls_deterministic(self):
        """Repeated identical calls stay stable (no state corruption)."""
        solver = SatSolver()
        xs = fresh_vars(solver, 6)
        for i in range(5):
            solver.add_clause([xs[i], xs[i + 1]])
        for _ in range(5):
            assert solver.solve(assumptions=[-xs[0], -xs[2]]) is SatResult.SAT
            assert solver.solve(assumptions=[-xs[1], -xs[3]]) is SatResult.SAT
        assert solver.stats.solve_calls == 10


class TestPrefixConflictLearning:
    """Conflicts inside the assumption prefix still yield learned clauses.

    ``_analyze_prefix`` resolves such a conflict down to the reason-less
    frontier: negations of the assumptions used stay in the clause, parked
    root-implied units resolve away.  The result is implied by the clause
    database alone, so it is learnable permanently — later calls with the
    same hostile assumption set refute by unit propagation instead of
    re-searching.
    """

    def test_prefix_conflict_learns_assumption_core_clause(self):
        solver = SatSolver()
        a, b, c, d = fresh_vars(solver, 4)
        # Assuming b propagates c and d, which together falsify the third
        # clause — a genuine conflict inside the assumption prefix (both
        # pseudo-decision levels are assumptions, no real decision taken).
        solver.add_clause([-b, c])
        solver.add_clause([-b, d])
        solver.add_clause([-a, -c, -d])
        assert solver.solve(assumptions=[a, b]) is SatResult.UNSAT
        assert solver.stats.decisions == 0
        learned = [cl for cl in solver._clauses if cl.learned]
        assert len(learned) == 1  # the assumption-core clause (-a or -b)
        assert set(learned[0].literals) == {-a, -b}
        # The learned clause is DB-implied: dropping either assumption
        # must still be SAT, and re-running the hostile set stays UNSAT.
        assert solver.solve(assumptions=[a, b]) is SatResult.UNSAT
        assert solver.solve(assumptions=[a]) is SatResult.SAT
        assert solver.solve(assumptions=[b]) is SatResult.SAT
        assert solver.solve() is SatResult.SAT

    def test_prefix_clause_drops_reasonless_units(self):
        solver = SatSolver()
        a, b, c, d, u = fresh_vars(solver, 5)
        solver.add_clause([u])  # root unit, assigned without a reason
        solver.add_clause([-b, c])
        solver.add_clause([-b, d])
        solver.add_clause([-u, -c, -d])
        assert solver.solve(assumptions=[a, b]) is SatResult.UNSAT
        # The prefix resolution keeps assumption negations but drops the
        # reason-less root unit entirely (it is DB-implied), leaving the
        # unit clause (-b) — parked, then asserted at the next root visit.
        assert all(
            set(cl.literals) <= {-a, -b}
            for cl in solver._clauses
            if cl.learned
        )
        assert solver.solve(assumptions=[a]) is SatResult.SAT
        assert solver.model_value(b) is False  # the parked unit stuck
        assert solver.model_value(u) is True
