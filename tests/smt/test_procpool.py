"""Process-mode portfolio racing: verdicts, pool reuse, orphan hygiene.

The pool spawns real subprocesses (spawn context, same as the batch
workers), so these tests keep widths small; the box may have a single
CPU, which is exactly why every pool here passes an explicit ``slots``
override — the clamp-to-CPUs default is tested separately.
"""

import logging
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.smt import terms as t
from repro.smt.portfolio import (
    portfolio_members,
    run_portfolio,
)
from repro.smt.procpool import (
    PortfolioPool,
    set_shared_slots,
    shared_pool,
    shutdown_shared_pool,
)
from repro.smt.sat import SatResult
from repro.smt.solver import Result, Solver


def const(value, width=8):
    return t.bv_const(value & ((1 << width) - 1), width)


def bv(name, width=8):
    return t.bv_var(name, width)


def _shiftadd(x, c, width):
    acc = t.bv_const(0, width)
    bit = 0
    while c:
        if c & 1:
            acc = t.add(acc, t.shl(x, t.bv_const(bit, width)))
        c >>= 1
        bit += 1
    return acc


def _miter(width, c, name="x"):
    x = t.bv_var(name, width)
    return t.ne(t.mul(x, t.bv_const(c, width)), _shiftadd(x, c, width))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def _wait_dead(pids, timeout=10.0) -> list[int]:
    """Poll until every pid is gone; returns the stragglers (ideally [])."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        alive = [pid for pid in pids if _pid_alive(pid)]
        if not alive:
            return []
        time.sleep(0.1)
    return [pid for pid in pids if _pid_alive(pid)]


@pytest.fixture
def pool():
    pool = PortfolioPool(slots=3)
    yield pool
    pool.shutdown()


class TestRaceVerdicts:
    def test_unsat_race(self, pool):
        outcome = pool.race(_miter(5, 0xB), portfolio_members(3), 50_000)
        assert outcome.result is SatResult.UNSAT
        assert outcome.winner is not None
        assert outcome.winner_model is None

    def test_sat_race_ships_verified_model(self, pool):
        x, y = bv("x"), bv("y")
        goal = t.and_(t.eq(t.mul(x, y), const(56)), t.ult(x, y))
        outcome = pool.race(goal, portfolio_members(3), 50_000)
        assert outcome.result is SatResult.SAT
        assert outcome.winner is not None
        env, selects = outcome.winner_model
        from repro.smt.portfolio import replay_model

        assert replay_model(goal, env, selects)

    def test_unknown_only_when_every_member_exhausts(self, pool):
        outcome = pool.race(_miter(10, 0x15D), portfolio_members(3), 2)
        assert outcome.result is SatResult.UNKNOWN
        assert outcome.winner is None
        assert set(outcome.exhausted) == {
            m.name for m in portfolio_members(3)
        }

    def test_racers_are_reused_across_races(self, pool):
        pool.race(_miter(5, 0xB), portfolio_members(2), 50_000)
        first = set(pool.pids())
        pool.race(_miter(6, 0x2D), portfolio_members(2), 50_000)
        assert set(pool.pids()) == first

    def test_width_clamped_to_slots_with_warning(self, caplog):
        pool = PortfolioPool(slots=2)
        try:
            with caplog.at_level(logging.WARNING, "repro.smt.procpool"):
                outcome = pool.race(
                    _miter(5, 0xB), portfolio_members(4), 50_000
                )
            assert outcome.result is SatResult.UNSAT
            assert len(pool.pids()) <= 2
            assert any(
                "clamping portfolio width" in rec.message
                for rec in caplog.records
            )
        finally:
            pool.shutdown()


class TestPoolLifecycle:
    def test_shutdown_reaps_every_racer(self, pool):
        pool.prestart(3)
        pids = pool.pids()
        assert len(pids) == 3
        pool.shutdown()
        assert _wait_dead(pids) == []
        with pytest.raises(RuntimeError):
            pool.race(_miter(5, 0xB), portfolio_members(2), 100)

    def test_shared_pool_respects_slot_override(self):
        shutdown_shared_pool()
        set_shared_slots(2)
        try:
            outcome = run_portfolio(
                _miter(5, 0xB), 50_000, width=2, mode="processes", probe=0
            )
            assert outcome.result is SatResult.UNSAT
            assert len(shared_pool().pids()) <= 2
        finally:
            shutdown_shared_pool()
            set_shared_slots(None)

    def test_interrupted_race_kills_pending_racers(self, pool):
        # Blow up the first-answer path mid-race (replay_model is called
        # on the winner's shipped model while the losers still race):
        # every still-pending racer must be killed and dropped from the
        # pool, not left solving behind the exception.
        import repro.smt.portfolio as portfolio

        x, y = bv("x"), bv("y")
        goal = t.and_(t.eq(t.mul(x, y), const(56)), t.ult(x, y))
        pool.prestart(2)
        pids = pool.pids()
        assert len(pids) == 2
        original = portfolio.replay_model

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        portfolio.replay_model = boom
        try:
            with pytest.raises(KeyboardInterrupt):
                pool.race(goal, portfolio_members(2), 50_000)
        finally:
            portfolio.replay_model = original
        # The pending loser was killed and forgotten; the winner's slot
        # may legitimately survive (it already answered and sits idle),
        # but only slots the pool still tracks may be alive.
        alive = [pid for pid in pids if _pid_alive(pid)]
        assert set(alive) <= set(pool.pids())
        pool.shutdown()
        assert _wait_dead(pids) == []


class TestSolverIntegration:
    def test_processes_mode_matches_single_solver(self):
        shutdown_shared_pool()
        set_shared_slots(3)
        try:
            x = bv("x")
            cases = [
                t.eq(t.mul(x, x), const(49)),
                _miter(5, 0xB),
                t.and_(t.ult(x, const(4)), t.ult(const(9), x)),
            ]
            for goal in cases:
                single = Solver(conflict_budget=50_000).check_sat(goal)
                raced = Solver(
                    conflict_budget=50_000,
                    portfolio=3,
                    portfolio_mode="processes",
                    portfolio_probe=0,
                ).check_sat(goal)
                assert raced is single
        finally:
            shutdown_shared_pool()
            set_shared_slots(None)

    def test_processes_mode_sat_model_readable(self):
        shutdown_shared_pool()
        set_shared_slots(2)
        try:
            x, y = bv("x"), bv("y")
            goal = t.and_(t.eq(t.mul(x, y), const(56)), t.ult(x, y))
            solver = Solver(
                conflict_budget=50_000,
                portfolio=2,
                portfolio_mode="processes",
                portfolio_probe=0,
            )
            assert solver.check_sat(goal, need_model=True) is Result.SAT
            model = solver.last_model
            assert model is not None
            vx, vy = model.eval_bv(x), model.eval_bv(y)
            assert (vx * vy) & 0xFF == 56
            assert vx < vy
            assert solver.stats.portfolio_mode == "processes"
        finally:
            shutdown_shared_pool()
            set_shared_slots(None)

    def test_probe_skips_the_pool_for_easy_queries(self):
        # An easy query must never pay racer-subprocess costs: the probe
        # decides in-process and the shared pool is never built.
        shutdown_shared_pool()
        try:
            outcome = run_portfolio(
                _miter(5, 0xB), 50_000, width=3, mode="processes", probe=512
            )
            assert outcome.result is SatResult.UNSAT
            assert outcome.probe_decided
            import repro.smt.procpool as procpool

            assert procpool._SHARED is None
        finally:
            shutdown_shared_pool()


_ORPHAN_DRIVER = """
import os, sys, time
sys.path.insert(0, {src!r})
from repro.smt import terms as t
from repro.smt.portfolio import portfolio_members
from repro.smt.procpool import PortfolioPool

def _shiftadd(x, c, width):
    acc = t.bv_const(0, width); bit = 0
    while c:
        if c & 1: acc = t.add(acc, t.shl(x, t.bv_const(bit, width)))
        c >>= 1; bit += 1
    return acc

def main():
    pool = PortfolioPool(slots=2)
    pool.prestart(2)
    print("PIDS " + " ".join(str(p) for p in pool.pids()), flush=True)
    x = t.bv_var("x", 12)
    c = 0x5AD
    goal = t.ne(t.mul(x, t.bv_const(c, 12)), _shiftadd(x, c, 12))
    # A long race (no budget): the parent test SIGTERMs us mid-flight.
    pool.race(goal, portfolio_members(2), None)

if __name__ == "__main__":
    main()
"""


class TestOrphanHygiene:
    def test_sigterm_during_race_leaves_no_racers(self, tmp_path):
        """Kill the racing parent; every racer must self-reap.

        Racers poll their pipe between bounded slices and exit on EOF, so
        even an uncatchable kill of the parent leaves no orphans beyond
        the current slice.
        """
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        script = tmp_path / "orphan_driver.py"
        script.write_text(
            _ORPHAN_DRIVER.format(src=os.path.abspath(src))
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("PIDS "), line
            pids = [int(p) for p in line.split()[1:]]
            assert len(pids) == 2
            # Let the race actually start before pulling the trigger.
            time.sleep(1.0)
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert _wait_dead(pids, timeout=15.0) == []
