"""Portfolio racing: verdict identity, UNKNOWN-iff-all-exhausted, wins."""

import pytest

from repro.smt import terms as t
from repro.smt.portfolio import (
    BASELINE,
    DIVERSE_MEMBERS,
    MAX_WIDTH,
    PortfolioMember,
    default_width,
    portfolio_members,
    run_portfolio,
)
from repro.smt.sat import SatResult, SolverConfig
from repro.smt.solver import Result, Solver


def const(value, width=8):
    return t.bv_const(value & ((1 << width) - 1), width)


def bv(name, width=8):
    return t.bv_var(name, width)


def _shiftadd(x, c, width):
    acc = t.bv_const(0, width)
    bit = 0
    while c:
        if c & 1:
            acc = t.add(acc, t.shl(x, t.bv_const(bit, width)))
        c >>= 1
        bit += 1
    return acc


def _miter(width, c, name="x"):
    """``x*C != shiftadd(x, C)``: UNSAT, needs real multiplier search."""
    x = t.bv_var(name, width)
    return t.ne(t.mul(x, t.bv_const(c, width)), _shiftadd(x, c, width))


class TestMemberTable:
    def test_member_zero_is_exact_baseline(self):
        members = portfolio_members(MAX_WIDTH)
        assert members[0] is BASELINE
        assert members[0].sat == SolverConfig()
        assert not members[0].reversed_form
        assert not members[0].preprocess

    def test_width_clamps_to_available_diversity(self):
        assert len(portfolio_members(1)) == 1
        assert len(portfolio_members(MAX_WIDTH)) == MAX_WIDTH
        assert len(portfolio_members(MAX_WIDTH + 50)) == MAX_WIDTH
        assert len(portfolio_members(0)) == 1
        assert len(portfolio_members(-3)) == 1

    def test_member_names_unique(self):
        names = [BASELINE.name] + [m.name for m in DIVERSE_MEMBERS]
        assert len(names) == len(set(names))

    def test_reversed_form_member_keeps_default_config(self):
        """Form diversity must not be washed out by a seed nudge: the
        reversed-form member is the baseline configuration on the
        reversed conjunction (a seeded variant explores the same
        landscape as seeded members and loses the easy-tail win)."""
        by_name = {m.name: m for m in DIVERSE_MEMBERS}
        assert by_name["reversed-form"].sat == SolverConfig()

    def test_default_width_clamped(self, monkeypatch):
        monkeypatch.setattr(
            "repro.smt.portfolio.available_cpus", lambda: 256
        )
        assert default_width() == MAX_WIDTH
        monkeypatch.setattr("repro.smt.portfolio.available_cpus", lambda: 1)
        assert default_width() == 2


class TestRaceVerdicts:
    def test_sat_verdict_with_verified_model(self):
        x, y = bv("x"), bv("y")
        goal = t.and_(t.eq(t.mul(x, y), const(56)), t.ult(x, y))
        outcome = run_portfolio(goal, 10_000, width=4)
        assert outcome.result is SatResult.SAT
        assert outcome.winner is not None
        assert outcome.winner_blaster is not None

    def test_unsat_verdict(self):
        outcome = run_portfolio(_miter(6, 0x2D), 10_000, width=4)
        assert outcome.result is SatResult.UNSAT
        assert outcome.winner is not None
        assert outcome.winner_blaster is None

    def test_matches_single_solver_on_decided(self):
        x = bv("x")
        cases = [
            t.eq(t.mul(x, x), const(49)),
            _miter(5, 0xB),
            t.and_(t.ult(x, const(4)), t.ult(const(9), x)),
        ]
        for goal in cases:
            single = Solver(conflict_budget=50_000).check_sat(goal)
            raced = Solver(conflict_budget=50_000, portfolio=4).check_sat(
                goal
            )
            assert raced is single

    def test_unknown_only_when_every_member_exhausts(self):
        # The width-10 multiplier-equivalence miter needs ~2000 conflicts
        # under every configuration: a 2-conflict budget decides nothing.
        goal = _miter(10, 0x15D)
        outcome = run_portfolio(goal, 2, width=4)
        assert outcome.result is SatResult.UNKNOWN
        assert outcome.winner is None
        assert len(outcome.exhausted) == 4
        assert set(outcome.exhausted) == {
            m.name for m in portfolio_members(4)
        }

    def test_reversed_form_wins_hard_head_conjunction(self):
        """The signature portfolio win: the refutable conjunct is last in
        encoding order, so the baseline grinds the hard head while the
        reversed-form member refutes the tail in its first slice."""
        query = t.and_(_miter(10, 0x15D, "x"), _miter(6, 0x2D, "z"))
        # A small probe: the hard head survives it (the full default probe
        # would grind this mid-size head out before ever racing).
        solver = Solver(
            conflict_budget=100_000, portfolio=4, portfolio_probe=256
        )
        assert solver.check_sat(query) is Result.UNSAT
        # The triage probe exhausts on the hard head, then the race runs.
        assert solver.stats.portfolio_escalations == 1
        assert solver.stats.portfolio_wins_by_config == {
            "reversed-form": 1
        }
        # Probe plus race still decided well before the single-solver
        # conflict count (the miter head alone needs thousands).
        assert solver.stats.conflicts < 2_000

    def test_threads_mode_same_verdict(self):
        x, y = bv("x"), bv("y")
        cases = [
            t.and_(t.eq(t.mul(x, y), const(56)), t.ult(x, y)),
            _miter(5, 0xB),
        ]
        for goal in cases:
            interleaved = run_portfolio(goal, 50_000, width=3)
            threaded = run_portfolio(
                goal, 50_000, width=3, mode="threads"
            )
            assert threaded.result is interleaved.result


class TestSolverIntegration:
    def test_easy_query_decided_by_probe(self):
        # The width-5 miter needs ~30 conflicts: the triage probe decides
        # it without ever racing, so no win is attributed.
        solver = Solver(conflict_budget=50_000, portfolio=4)
        assert solver.check_sat(_miter(5, 0xB)) is Result.UNSAT
        stats = solver.stats
        assert stats.portfolio_queries == 1
        assert stats.portfolio_probe_decided == 1
        assert stats.portfolio_escalations == 0
        assert stats.portfolio_wins_by_config == {}
        assert stats.portfolio_mode == "interleave"

    def test_portfolio_counters_populate(self):
        solver = Solver(conflict_budget=50_000, portfolio=4, portfolio_probe=0)
        assert solver.check_sat(_miter(5, 0xB)) is Result.UNSAT
        stats = solver.stats
        assert stats.portfolio_queries == 1
        assert stats.portfolio_probe_decided == 0
        assert stats.portfolio_escalations == 0
        assert sum(stats.portfolio_wins_by_config.values()) == 1

    def test_portfolio_zero_means_auto_width(self, monkeypatch):
        monkeypatch.setattr(
            "repro.smt.solver.default_width", lambda: 3
        )
        assert Solver(portfolio=0).portfolio == 3
        assert Solver(portfolio=1).portfolio == 1
        assert Solver(portfolio=-2).portfolio == 1

    def test_portfolio_never_stores_to_shared_cache(self):
        from repro.smt.cache import QueryCache

        cache = QueryCache()
        solver = Solver(conflict_budget=50_000, portfolio=4, cache=cache)
        assert solver.check_sat(_miter(5, 0xB)) is Result.UNSAT
        assert cache.stats.stores == 0

    def test_session_escalates_unknown_to_portfolio(self):
        x = bv("x", 10)
        prefix = t.ult(x, t.bv_const(1000, 10))
        # Starved scoped solver: the session check itself is UNKNOWN,
        # then the escalation race (same budget, diverse members) runs.
        delta = _miter(10, 0x15D)
        solver = Solver(conflict_budget=2, portfolio=3)
        with solver.session([prefix]) as session:
            outcome = session.check(delta)
        assert solver.stats.portfolio_queries == 1
        assert outcome in (Result.UNKNOWN, Result.SAT, Result.UNSAT)

    def test_sessions_keep_scoped_solver_when_decided(self):
        x = bv("x")
        solver = Solver(portfolio=4)
        with solver.session([t.ult(x, const(10))]) as session:
            assert session.check(t.ult(const(3), x)) is Result.SAT
        assert solver.stats.portfolio_queries == 0


class TestTriage:
    """Adaptive triage: probe-alone decisions, escalation, verdict identity."""

    def test_probe_decided_flags_on_easy_query(self):
        outcome = run_portfolio(_miter(5, 0xB), 50_000, width=4, probe=512)
        assert outcome.result is SatResult.UNSAT
        assert outcome.probe_decided
        assert not outcome.escalated
        assert outcome.winner == "baseline"

    def test_escalation_flags_on_hard_query(self):
        query = t.and_(_miter(10, 0x15D, "x"), _miter(6, 0x2D, "z"))
        outcome = run_portfolio(query, 100_000, width=4, probe=512)
        assert outcome.result is SatResult.UNSAT
        assert outcome.escalated
        assert not outcome.probe_decided
        assert outcome.winner == "reversed-form"

    def test_probe_zero_never_sets_flags(self):
        outcome = run_portfolio(_miter(5, 0xB), 50_000, width=4, probe=0)
        assert outcome.result is SatResult.UNSAT
        assert not outcome.probe_decided
        assert not outcome.escalated

    def test_width_one_skips_the_probe(self):
        # A width-1 "portfolio" is the single solver; probing first would
        # just run the same member twice.
        outcome = run_portfolio(_miter(5, 0xB), 50_000, width=1, probe=512)
        assert outcome.result is SatResult.UNSAT
        assert not outcome.probe_decided
        assert not outcome.escalated

    def test_triage_verdict_identical_to_always_race(self):
        # The probe reuses the baseline runner's slice schedule, so the
        # per-member search trajectories — and hence the verdict,
        # including UNKNOWN — match an always-race run exactly.
        x, y = bv("x"), bv("y")
        cases = [
            (t.and_(t.eq(t.mul(x, y), const(56)), t.ult(x, y)), 50_000),
            (_miter(5, 0xB), 50_000),
            (t.and_(_miter(10, 0x15D, "x"), _miter(6, 0x2D, "z")), 100_000),
            (_miter(10, 0x15D), 2),  # starved: UNKNOWN both ways
            (_miter(10, 0x15D), 700),  # starved mid-escalation
        ]
        for goal, budget in cases:
            always = run_portfolio(goal, budget, width=4, probe=0)
            triaged = run_portfolio(goal, budget, width=4, probe=512)
            assert triaged.result is always.result, (goal, budget)
            assert set(triaged.exhausted) == set(always.exhausted)

    def test_unknown_on_escalation_reports_all_members_exhausted(self):
        outcome = run_portfolio(_miter(10, 0x15D), 700, width=4, probe=512)
        assert outcome.result is SatResult.UNKNOWN
        assert outcome.escalated
        assert set(outcome.exhausted) == {
            m.name for m in portfolio_members(4)
        }

    def test_invalid_probe_rejected(self):
        with pytest.raises(ValueError):
            run_portfolio(_miter(5, 0xB), 100, width=2, probe=-1)
        with pytest.raises(ValueError):
            Solver(portfolio=2, portfolio_probe=-5)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            run_portfolio(_miter(5, 0xB), 100, width=2, mode="fibers")
        with pytest.raises(ValueError):
            Solver(portfolio=2, portfolio_mode="fibers")

    def test_stats_mode_union_merges(self):
        from repro.smt.solver import QueryStats

        left = QueryStats(portfolio_mode="interleave")
        right = QueryStats(
            portfolio_mode="processes",
            portfolio_probe_decided=3,
            portfolio_escalations=1,
        )
        left.merge(right)
        assert left.portfolio_mode == "interleave,processes"
        assert left.portfolio_probe_decided == 3
        assert left.portfolio_escalations == 1


class TestMemberSoundness:
    """Every diversification axis alone agrees with the baseline."""

    @pytest.mark.parametrize(
        "member", DIVERSE_MEMBERS, ids=[m.name for m in DIVERSE_MEMBERS]
    )
    def test_member_agrees_with_baseline(self, member):
        x, y = bv("x"), bv("y")
        goals = [
            t.eq(t.mul(x, y), const(56)),
            _miter(5, 0xB),
            t.and_(t.eq(t.mul(x, x), const(49)), t.ult(x, const(200))),
            t.and_(t.ult(x, const(4)), t.ult(const(9), x)),
        ]
        from repro.smt.portfolio import _Runner

        for goal in goals:
            baseline = _Runner(BASELINE, goal).sat
            expected = baseline.solve(conflict_budget=50_000)
            runner = _Runner(member, goal)
            got = runner.sat.solve(conflict_budget=50_000)
            assert got is expected, (member.name, goal)


class TestPortfolioMemberDataclass:
    def test_frozen(self):
        with pytest.raises(Exception):
            BASELINE.name = "other"

    def test_custom_member(self):
        member = PortfolioMember(
            "mine", SolverConfig(activity_seed=9), preprocess=True
        )
        assert member.preprocess_budget == 20_000
