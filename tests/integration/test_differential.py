"""Differential testing: LLVM and Virtual x86 co-execution.

Independently of KEQ, running the input and the ISel output on the *same
concrete arguments* must produce the same return value and final memory.
This cross-checks three components at once (the two semantics and ISel)
and is the ground truth KEQ's symbolic verdicts must agree with.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.isel import select_function
from repro.llvm import parse_module
from repro.llvm.semantics import LlvmSemantics, entry_state, module_memory
from repro.semantics.state import StatusKind
from repro.smt import t
from repro.vx86.insns import ARGUMENT_REGISTERS
from repro.vx86.semantics import Vx86Semantics, machine_entry_state
from repro.workloads import FunctionShape, generate_module


def run_concrete(semantics, state, limit=400000):
    frontier = [state]
    for _ in range(limit):
        advanced = []
        for current in frontier:
            successors = [
                s for s in semantics.step(current) if s.path_condition is t.TRUE
            ]
            if successors:
                advanced.extend(successors)
            else:
                assert current.status in (StatusKind.EXITED, StatusKind.ERROR)
                return current
        frontier = advanced
        assert len(frontier) == 1, "concrete execution must not branch"
    raise AssertionError("did not halt")


def concretize(memory):
    """Give every object fully concrete initial contents (both sides get
    the same bytes, mirroring one shared start state of the real machine)."""
    from repro.memory import PointerValue

    for name, contents in memory.objects:
        size = contents.descriptor.size
        pattern = int.from_bytes(
            bytes((7 * i + 3) % 256 for i in range(size)), "little"
        )
        memory = memory.store(
            PointerValue(name, t.zero(64)), t.bv_const(pattern, size * 8), size
        )
    return memory


def co_execute(module, function_name, argument_values):
    """Run LLVM and ISel-output x86 on the same concrete inputs."""
    function = module.function(function_name)
    machine, hints = select_function(module, function)

    arguments = {
        name: t.bv_const(value, 32)
        for (name, _), value in zip(function.parameters, argument_values)
    }
    memory = concretize(module_memory(module))
    llvm_final = run_concrete(
        LlvmSemantics(module),
        entry_state(module, function, arguments=arguments, memory=memory),
    )

    registers = {
        ARGUMENT_REGISTERS[index]: t.bv_const(value, 64)
        for index, value in enumerate(argument_values[: len(function.parameters)])
    }
    x86_state = machine_entry_state(machine, memory, registers)
    x86_state = x86_state.with_memory(concretize(x86_state.memory))
    x86_final = run_concrete(Vx86Semantics({machine.name: machine}), x86_state)
    return llvm_final, x86_final


def assert_equivalent_outcome(llvm_final, x86_final):
    assert llvm_final.status == x86_final.status
    if llvm_final.status is StatusKind.EXITED:
        if llvm_final.returned is not None:
            llvm_value = llvm_final.returned.value & 0xFFFFFFFF
            x86_value = x86_final.returned.value & 0xFFFFFFFF
            assert llvm_value == x86_value
        # Final memories must agree byte for byte on concrete cells.
        for name, contents in llvm_final.memory.objects:
            if not x86_final.memory.has_object(name):
                continue
            other = x86_final.memory.object(name)
            for offset in range(contents.descriptor.size):
                left = contents.load_byte(offset)
                right = other.load_byte(offset)
                if left.is_const() and right.is_const():
                    assert left.value == right.value, (name, offset)
                else:
                    assert left is right, (name, offset)


LOOP_FN = """
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %acc2 = add i32 %acc, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %acc
}
"""

MEMORY_FN = """
@g = external global [4 x i32]
define i32 @f(i32 %x) {
entry:
  %p = alloca i32
  store i32 %x, i32* %p
  %v = load i32, i32* %p
  %q = getelementptr inbounds [4 x i32], [4 x i32]* @g, i64 0, i64 1
  store i32 %v, i32* %q
  %w = load i32, i32* %q
  %r = mul i32 %w, 3
  ret i32 %r
}
"""


class TestHandWrittenFunctions:
    def test_loop_function(self):
        module = parse_module(LOOP_FN)
        for n in (0, 1, 7):
            llvm_final, x86_final = co_execute(module, "sum", [n])
            assert_equivalent_outcome(llvm_final, x86_final)
            assert llvm_final.returned.value == sum(range(n))

    def test_memory_function(self):
        module = parse_module(MEMORY_FN)
        llvm_final, x86_final = co_execute(module, "f", [14])
        assert_equivalent_outcome(llvm_final, x86_final)
        assert llvm_final.returned.value == 42

    def test_signed_comparison_function(self):
        module = parse_module(
            "define i32 @m(i32 %a, i32 %b) {\nentry:\n"
            "  %c = icmp slt i32 %a, %b\n"
            "  br i1 %c, label %x, label %y\n"
            "x:\n  ret i32 %a\ny:\n  ret i32 %b\n}"
        )
        for a, b in ((1, 2), (2, 1), (0xFFFFFFFF, 1), (1, 0xFFFFFFFF)):
            llvm_final, x86_final = co_execute(module, "m", [a, b])
            assert_equivalent_outcome(llvm_final, x86_final)


class TestGeneratedFunctions:
    @given(
        seed=st.integers(0, 5000),
        # Any argument can end up as a loop bound, so keep magnitudes small
        # enough for concrete execution to finish (wrap-around is still
        # exercised through subtraction and shifts in the generated code).
        args=st.tuples(
            st.integers(0, 200),
            st.integers(0, 200),
            st.integers(0, 50),
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_generated_functions_agree(self, seed, args):
        module = generate_module(
            [
                (
                    "f",
                    FunctionShape(
                        loops=1, diamonds=1, memory_ops=1, allocas=1, calls=0
                    ),
                    seed,
                )
            ]
        )
        llvm_final, x86_final = co_execute(module, "f", list(args))
        assert_equivalent_outcome(llvm_final, x86_final)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_keq_verdict_matches_differential(self, seed):
        """If KEQ validates, concrete co-execution must agree (soundness
        spot check)."""
        from repro.tv import validate_function

        module = generate_module(
            [("f", FunctionShape(loops=1, diamonds=1, calls=0), seed)]
        )
        outcome = validate_function(module, "f")
        if outcome.ok:
            llvm_final, x86_final = co_execute(module, "f", [5, 9, 3])
            assert_equivalent_outcome(llvm_final, x86_final)
