"""The KEQ checker is language-parametric (paper Section 3): the same
entry points validate the vx86 and Virtual RISC-V backends, and nothing
in :mod:`repro.keq` may mention either target.

Two angles:

* a Figure 6-style corpus runs through ``run_corpus`` under both
  ``--target`` values and every function lands in the category the
  corpus expects — with identical verdict counters across targets;
* a namespace guard walks every module of ``repro.keq`` and rejects any
  symbol (or source text) that names a concrete target.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.keq
from repro.targets import TARGET_NAMES
from repro.tv import TvOptions
from repro.tv.batch import run_corpus
from repro.workloads import gcc_like_corpus


def corpus_result(target: str):
    corpus = gcc_like_corpus(scale=12, seed=99)
    result = run_corpus(corpus, TvOptions.for_campaign(target=target))
    return corpus, result


class TestCorpusOnBothTargets:
    @pytest.mark.parametrize("target", TARGET_NAMES)
    def test_every_function_lands_in_expected_category(self, target):
        corpus, result = corpus_result(target)
        by_name = corpus.by_name()
        for outcome in result.outcomes:
            assert outcome.target == target
            assert outcome.category == by_name[outcome.function].expect, (
                target,
                outcome.function,
                outcome.category,
                outcome.detail,
            )

    def test_verdict_counters_match_across_targets(self):
        _, vx86 = corpus_result("vx86")
        _, vriscv = corpus_result("vriscv")
        assert vx86.figure6_rows() == vriscv.figure6_rows()
        assert vx86.category_counts == vriscv.category_counts


def keq_modules():
    modules = [repro.keq]
    for info in pkgutil.iter_modules(repro.keq.__path__):
        modules.append(importlib.import_module(f"repro.keq.{info.name}"))
    return modules


class TestKeqParametricity:
    """Nothing target-specific may leak into the checker's namespace."""

    FORBIDDEN = ("vx86", "vriscv", "riscv", "x86")

    def test_modules_exist(self):
        names = {module.__name__ for module in keq_modules()}
        assert "repro.keq.symbolic" in names  # the guard walks something real

    def test_no_target_symbols_in_namespaces(self):
        for module in keq_modules():
            for name, value in vars(module).items():
                home = getattr(value, "__module__", "") or ""
                origin = f"{module.__name__}.{name} (from {home})"
                for word in self.FORBIDDEN:
                    assert word not in name.lower(), origin
                    assert word not in home.lower(), origin

    def test_no_target_imports_in_source(self):
        """Prose may reference the targets (the acceptability docstring
        cites the paper's LLVM/virtual-x86 policy); ``import`` lines must
        not."""
        for module in keq_modules():
            for line in inspect.getsource(module).lower().splitlines():
                stripped = line.strip()
                if not stripped.startswith(("import ", "from ")):
                    continue
                for word in self.FORBIDDEN:
                    assert word not in stripped, (module.__name__, stripped)

    def test_coupling_is_the_semantics_protocol_only(self):
        """KEQ sees targets through ``repro.semantics.interface`` alone:
        both registered semantics satisfy the structural protocol KEQ
        steps."""
        from repro.semantics.interface import Semantics
        from repro.targets import get_target

        for name in TARGET_NAMES:
            semantics_class = get_target(name).semantics
            assert isinstance(semantics_class({}), Semantics)
