"""The oracles must pass on the stock stack and catch injected bugs."""

import pytest

from repro.fuzz import generator as gen
from repro.fuzz import oracles
from repro.fuzz.generator import GenConfig, TermGenerator
from repro.fuzz.oracles import (
    brute_force_eligible,
    brute_force_sat,
    check_brute_force,
    check_cache_consistency,
    check_implication_forms,
    check_incremental_vs_fresh,
    check_model_soundness,
    check_simplify_eval,
    first_true_partition,
)
from repro.smt import terms as t
from repro.smt.eval import evaluate
from repro.smt.solver import Result


class TestStockStackPasses:
    """No oracle fires on the shipped stack (a tiny fixed-seed campaign)."""

    def test_simplify_eval_clean(self):
        generator = TermGenerator(101, GenConfig(allow_select=True))
        for _ in range(30):
            assert check_simplify_eval(generator.formula()) is None
            assert check_simplify_eval(generator.bv_term(8)) is None

    def test_model_soundness_clean(self):
        generator = TermGenerator(102, GenConfig(allow_select=True))
        for _ in range(15):
            assert check_model_soundness(generator.formula()) is None

    def test_brute_force_clean(self):
        generator = TermGenerator(
            103, GenConfig(widths=(1, 8), max_depth=3, vars_per_width=1, bool_vars=1)
        )
        checked = 0
        for _ in range(40):
            formula = generator.formula()
            if brute_force_eligible(formula):
                checked += 1
                assert check_brute_force(formula) is None
        assert checked > 5

    def test_implication_forms_clean(self):
        generator = TermGenerator(104, GenConfig(max_depth=3))
        for _ in range(10):
            antecedent = generator.bool_term(3)
            conditions = [generator.bool_term(2) for _ in range(2)]
            assert check_implication_forms(antecedent, conditions) is None

    def test_cache_consistency_clean(self):
        generator = TermGenerator(105, GenConfig(max_depth=4))
        batch = [generator.formula() for _ in range(4)]
        assert check_cache_consistency(batch) is None

    def test_incremental_vs_fresh_clean(self):
        generator = TermGenerator(106, GenConfig(max_depth=4))
        for _ in range(10):
            prefix = generator.formula()
            deltas = [generator.bool_term(2) for _ in range(2)]
            assert check_incremental_vs_fresh(prefix, deltas) is None


class TestBruteForceReference:
    def test_sat_formula(self):
        x = t.bv_var("x", 2)
        assert brute_force_sat(t.ult(x, t.bv_const(3, 2))) is True

    def test_unsat_formula(self):
        x = t.bv_var("x", 2)
        assert brute_force_sat(t.ult(x, t.zero(2))) is False

    def test_eligibility_limits(self):
        small = t.eq(t.bv_var("x", 8), t.zext(t.bv_var("y", 2), 8))
        assert brute_force_eligible(small)
        wide = t.eq(t.bv_var("x", 32), t.zero(32))
        assert not brute_force_eligible(wide)  # 32 bits > cap
        with_select = t.eq(t.select("mem", t.bv_var("x", 8), 8), t.zero(8))
        assert not brute_force_eligible(with_select)


class TestFirstTruePartition:
    def test_exactly_one_cell_holds_under_every_assignment(self):
        p, q = t.bool_var("p"), t.bool_var("q")
        cells = first_true_partition([p, t.and_(q, t.not_(p)), q])
        for p_val in (False, True):
            for q_val in (False, True):
                env = {"p": p_val, "q": q_val}
                holding = [c for c in cells if evaluate(c, env) is True]
                assert len(holding) == 1


class TestOraclesCatchInjectedBugs:
    """Sensitivity: each oracle must fire when its layer is broken."""

    def test_unsound_simplify_is_detected(self, monkeypatch):
        # A "simplifier" that rewrites every bitvector term to zero is
        # caught by the all-ones trial.
        monkeypatch.setattr(
            oracles, "simplify", lambda term: t.zero(term.width)
        )
        violation = check_simplify_eval(t.bv_var("x", 8))
        assert violation is not None
        assert violation.oracle == "simplify-eval"
        assert violation.predicate(violation.witnesses)

    def test_sat_without_model_is_detected(self, monkeypatch):
        class NoModelSolver:
            def __init__(self, **kwargs):
                self.last_model = None

            def check_sat(self, formula, need_model=False):
                return Result.SAT

        monkeypatch.setattr(oracles, "Solver", NoModelSolver)
        violation = check_model_soundness(t.bool_var("p"))
        assert violation is not None
        assert "last_model is None" in violation.detail

    def test_lying_cache_is_detected(self, monkeypatch):
        from repro.smt import cache as cache_mod

        real_cache = cache_mod.QueryCache

        class LyingCache(real_cache):
            def lookup(self, goal, budget):
                hit = super().lookup(goal, budget)
                if hit is Result.SAT:
                    return Result.UNSAT
                if hit is Result.UNSAT:
                    return Result.SAT
                return hit

        monkeypatch.setattr(cache_mod, "QueryCache", LyingCache)
        x = t.bv_var("x", 8)
        batch = [t.ult(x, t.bv_const(3, 8)), t.eq(x, t.bv_const(200, 8))]
        violation = check_cache_consistency(batch)
        assert violation is not None
        assert violation.oracle == "cache-consistency"

    def test_lying_session_is_detected(self, monkeypatch):
        from repro.smt.solver import Solver

        class LyingSessionSolver(Solver):
            """Sessions flip UNSAT deltas to SAT; fresh solving is honest."""

            def session(self, assumptions=()):
                real = super().session(assumptions)

                class LyingSession:
                    def __enter__(self):
                        real.__enter__()
                        return self

                    def __exit__(self, *exc):
                        return real.__exit__(*exc)

                    def check(self, delta, assumptions=(), need_model=False):
                        verdict = real.check(delta, assumptions, need_model)
                        if verdict is Result.UNSAT:
                            return Result.SAT
                        return verdict

                return LyingSession()

        monkeypatch.setattr(oracles, "Solver", LyingSessionSolver)
        x = t.bv_var("x", 8)
        prefix = t.eq(x, t.bv_const(3, 8))
        deltas = [t.eq(x, t.bv_const(5, 8))]  # UNSAT under the prefix
        violation = check_incremental_vs_fresh(prefix, deltas)
        assert violation is not None
        assert violation.oracle == "incremental-vs-fresh"
        assert violation.predicate(violation.witnesses)


class TestModelSoundnessWithRewrittenSelects:
    """Regression: simplify may rewrite a select's *offset*, so the select
    node in the original formula is not the node the solver encoded.  The
    oracle must read model values from the encoded (simplified) nodes."""

    def test_offset_rewritten_by_simplify(self):
        from repro.smt.printer import from_canonical

        # Shrunk counterexamples from the seed-0 campaign before the fix.
        for text in (
            "bvconst:i16[0]();bvvar:i16['v16_1']();add:i16[](1,1);"
            "select:i32['stk',32](2);extract:i16[16,1](3);eq:Bool[](0,4);"
            "not:Bool[](5)",
            "bvconst:i1[0]();boolvar:Bool['p0']();bvconst:i1[1]();"
            "ite:i1[](1,2,0);zext:i16[16](3);select:i1['stk',1](4);"
            "eq:Bool[](0,5);not:Bool[](6)",
        ):
            assert check_model_soundness(from_canonical(text)) is None


class TestUnknownIsNoVerdict:
    def test_budget_exhaustion_passes_brute_force_oracle(self, monkeypatch):
        monkeypatch.setattr(oracles, "ORACLE_BUDGET", 0)
        x, y = t.bv_var("x", 8), t.bv_var("y", 2)
        formula = t.eq(t.mul(x, x), t.zext(y, 8))
        if brute_force_eligible(formula):
            assert check_brute_force(formula) is None


class TestPortfolioVsSingleOracle:
    def test_clean_formulas_pass(self):
        from repro.fuzz.oracles import check_portfolio_vs_single

        x = t.bv_var("x", 8)
        for formula in [
            t.ult(x, t.bv_const(3, 8)),
            t.eq(t.mul(x, x), t.bv_const(49, 8)),
            t.and_(
                t.ult(x, t.bv_const(4, 8)), t.ult(t.bv_const(9, 8), x)
            ),
        ]:
            assert check_portfolio_vs_single(formula) is None

    def test_non_boolean_terms_skipped(self):
        from repro.fuzz.oracles import check_portfolio_vs_single

        assert check_portfolio_vs_single(t.bv_var("x", 8)) is None

    def test_lying_portfolio_is_detected(self, monkeypatch):
        from repro.fuzz.oracles import check_portfolio_vs_single
        from repro.smt.solver import Solver

        class LyingPortfolioSolver(Solver):
            def check_sat(self, formula, need_model=False):
                outcome = super().check_sat(formula, need_model=need_model)
                if self.portfolio > 1 and outcome is Result.SAT:
                    return Result.UNSAT
                if self.portfolio > 1 and outcome is Result.UNSAT:
                    return Result.SAT
                return outcome

        monkeypatch.setattr(oracles, "Solver", LyingPortfolioSolver)
        x = t.bv_var("x", 8)
        violation = check_portfolio_vs_single(t.ult(x, t.bv_const(3, 8)))
        assert violation is not None
        assert violation.oracle == "portfolio-vs-single"

    def test_corrupt_portfolio_model_is_detected(self, monkeypatch):
        from repro.fuzz.oracles import check_portfolio_vs_single
        from repro.smt.solver import Solver

        class Zeroed:
            """A model claiming every variable is zero/False."""

            def eval_bv(self, term):
                return 0

            def eval_bool(self, term):
                return False

        class CorruptModelSolver(Solver):
            def check_sat(self, formula, need_model=False):
                outcome = super().check_sat(formula, need_model=need_model)
                if self.portfolio > 1 and outcome is Result.SAT:
                    self.last_model = Zeroed()
                return outcome

        monkeypatch.setattr(oracles, "Solver", CorruptModelSolver)
        x = t.bv_var("x", 8)
        # Satisfiable only by nonzero x: the zeroed model must fail replay.
        violation = check_portfolio_vs_single(
            t.eq(x, t.bv_const(7, 8))
        )
        assert violation is not None
        assert violation.oracle == "portfolio-vs-single"


class TestTriageVsAlwaysOracle:
    def test_stock_triage_is_clean(self):
        from repro.fuzz.oracles import check_triage_vs_always

        generator = TermGenerator(77, GenConfig())
        for _ in range(10):
            assert check_triage_vs_always(generator.formula()) is None

    def test_verdict_flip_is_detected(self, monkeypatch):
        from repro.fuzz.oracles import check_triage_vs_always
        from repro.smt.sat import SatResult

        real = oracles.run_portfolio

        def lying(goal, budget, width=3, probe=0, **kwargs):
            outcome = real(goal, budget, width=width, probe=probe, **kwargs)
            if probe and outcome.result is SatResult.SAT:
                outcome.result = SatResult.UNSAT
            return outcome

        monkeypatch.setattr(oracles, "run_portfolio", lying)
        x = t.bv_var("x", 8)
        violation = check_triage_vs_always(t.eq(x, t.bv_const(7, 8)))
        assert violation is not None
        assert violation.oracle == "triage-vs-always-portfolio"
        assert "always-race" in violation.detail

    def test_exhausted_set_divergence_is_detected(self, monkeypatch):
        from repro.fuzz.oracles import check_triage_vs_always
        from repro.smt.sat import SatResult

        real = oracles.run_portfolio

        def dropping(goal, budget, width=3, probe=0, **kwargs):
            outcome = real(goal, budget, width=width, probe=probe, **kwargs)
            if probe and outcome.result is SatResult.UNKNOWN:
                outcome.exhausted = outcome.exhausted[:-1]
            return outcome

        monkeypatch.setattr(oracles, "run_portfolio", dropping)
        # An UNSAT multiplication miter at a starved budget: UNKNOWN is
        # guaranteed (no model to stumble on, no budget to prove UNSAT).
        x = t.bv_var("x", 10)
        c = 0x15D
        acc = t.bv_const(0, 10)
        bit = 0
        k = c
        while k:
            if k & 1:
                acc = t.add(acc, t.shl(x, t.bv_const(bit, 10)))
            k >>= 1
            bit += 1
        hard = t.ne(t.mul(x, t.bv_const(c, 10)), acc)
        monkeypatch.setattr(oracles, "ORACLE_BUDGET", 2)
        violation = check_triage_vs_always(hard)
        assert violation is not None
        assert violation.oracle == "triage-vs-always-portfolio"
        assert "exhausted" in violation.detail
