"""The generator's contracts: determinism, well-sortedness, purity."""

from repro.fuzz.generator import (
    GenConfig,
    TermGenerator,
    deterministic_env,
    deterministic_select,
)
from repro.fuzz.oracles import _has_select
from repro.smt import terms as t
from repro.smt.eval import evaluate
from repro.smt.printer import canonical
from repro.smt.terms import BOOL


def _walk(term):
    seen = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        yield node
        stack.extend(node.args)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        config = GenConfig(allow_select=True)
        a = TermGenerator(42, config)
        b = TermGenerator(42, config)
        for _ in range(50):
            assert canonical(a.formula()) == canonical(b.formula())
            assert canonical(a.bv_term(16)) == canonical(b.bv_term(16))

    def test_different_seeds_diverge(self):
        a = [canonical(TermGenerator(1).formula()) for _ in range(10)]
        b = [canonical(TermGenerator(2).formula()) for _ in range(10)]
        assert a != b


class TestWellSortedness:
    def test_bv_terms_have_requested_width(self):
        generator = TermGenerator(7, GenConfig(allow_select=True))
        for width in (1, 8, 16, 32) * 10:
            term = generator.bv_term(width)
            assert term.sort is not BOOL
            assert term.width == width

    def test_formulas_are_boolean(self):
        generator = TermGenerator(11, GenConfig(allow_select=True))
        for _ in range(40):
            assert generator.formula().sort is BOOL

    def test_select_offsets_are_select_free(self):
        generator = TermGenerator(13, GenConfig(allow_select=True))
        selects = 0
        for _ in range(80):
            for node in _walk(generator.formula()):
                if node.op == "select":
                    selects += 1
                    assert not _has_select(node.args[0])
        assert selects > 0  # the configuration really produces select atoms

    def test_no_select_config_never_emits_select(self):
        generator = TermGenerator(13, GenConfig(allow_select=False))
        for _ in range(40):
            assert not _has_select(generator.formula())


class TestDeterministicEnvironments:
    def test_trial_zero_is_all_zeros_and_trial_one_all_ones(self):
        term = t.add(t.bv_var("x", 8), t.bv_var("y", 8))
        assert deterministic_env(term, 0) == {"x": 0, "y": 0}
        assert deterministic_env(term, 1) == {"x": 255, "y": 255}

    def test_env_is_pure_in_name_and_trial(self):
        term = t.ult(t.bv_var("v32_0", 32), t.bv_var("v32_1", 32))
        for trial in range(4):
            assert deterministic_env(term, trial) == deterministic_env(term, trial)

    def test_env_covers_all_free_variables(self):
        generator = TermGenerator(3, GenConfig(allow_select=True))
        for trial in range(3):
            formula = generator.formula()
            value = evaluate(
                formula, deterministic_env(formula, trial), deterministic_select(trial)
            )
            assert isinstance(value, bool)

    def test_select_handler_is_pure_and_masked(self):
        handler = deterministic_select(2)
        assert handler("mem", 17, 8) == handler("mem", 17, 8)
        for offset in range(16):
            assert 0 <= handler("stk", offset, 8) <= 255
        assert deterministic_select(2)("mem", 17, 8) == handler("mem", 17, 8)
