"""The campaign driver and its CLI entry point."""

from repro.fuzz import harness
from repro.fuzz.harness import run_fuzz
from repro.fuzz.oracles import Violation
from repro.smt import terms as t


class TestRunFuzz:
    def test_small_campaign_is_clean_and_counts_oracles(self):
        report = run_fuzz(seed=5, iterations=12)
        assert report.ok
        assert report.iterations == 12
        assert report.oracle_runs["simplify-eval"] == 24
        assert report.oracle_runs["model-soundness"] == 12
        assert report.oracle_runs["positive-vs-negative-form"] == 12
        assert report.oracle_runs["incremental-vs-fresh"] == 12
        assert report.oracle_runs["cache-consistency"] == 1
        assert report.oracle_runs["portfolio-vs-single"] == 3
        assert report.oracle_runs["triage-vs-always-portfolio"] == 3
        assert report.elapsed_seconds > 0
        assert report.iterations_per_second() > 0
        assert "[ok]" in report.summary()

    def test_campaign_is_deterministic(self):
        first = run_fuzz(seed=9, iterations=8)
        second = run_fuzz(seed=9, iterations=8)
        assert first.oracle_runs == second.oracle_runs
        assert first.ok == second.ok

    def test_violations_are_shrunk_and_stop_the_campaign(self, monkeypatch):
        planted = t.ult(
            t.add(t.bv_var("v8_0", 8), t.bv_const(7, 8)), t.bv_var("v8_1", 8)
        )

        def always_fires(term):
            return Violation(
                oracle="simplify-eval",
                detail="planted",
                witnesses=(planted,),
                predicate=lambda ws: True,
            )

        monkeypatch.setattr(harness, "check_simplify_eval", always_fires)
        report = run_fuzz(seed=0, iterations=50, max_violations=1)
        assert not report.ok
        assert report.iterations < 50  # stopped early
        violation = report.violations[0]
        # predicate accepts anything, so the shrinker reaches a leaf
        assert all(not w.args for w in violation.shrunk)
        rendered = violation.render()
        assert "oracle violated: simplify-eval" in rendered
        assert "canonical:" in rendered
        assert "from_canonical" in rendered

    def test_no_shrink_keeps_raw_witnesses(self, monkeypatch):
        planted = t.not_(t.bool_var("p0"))

        def always_fires(term):
            return Violation(
                oracle="simplify-eval",
                detail="planted",
                witnesses=(planted,),
                predicate=lambda ws: True,
            )

        monkeypatch.setattr(harness, "check_simplify_eval", always_fires)
        report = run_fuzz(
            seed=0, iterations=5, shrink_failures=False, max_violations=1
        )
        assert report.violations[0].shrunk == (planted,)


class TestCli:
    def test_fuzz_subcommand_ok(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--seed", "3", "--iterations", "5"]) == 0
        out = capsys.readouterr().out
        assert "fuzz seed=3 iterations=5 [ok]" in out

    def test_fuzz_subcommand_flags(self, capsys):
        from repro.cli import main

        code = main(
            [
                "fuzz",
                "--seed",
                "4",
                "--iterations",
                "3",
                "--no-select",
                "--max-depth",
                "3",
                "--no-shrink",
            ]
        )
        assert code == 0
        assert "[ok]" in capsys.readouterr().out
