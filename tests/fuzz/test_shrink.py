"""The delta-debugging shrinker: 1-minimal, predicate-preserving."""

from repro.fuzz.shrink import shrink, shrink_term
from repro.smt import terms as t
from repro.smt.eval import evaluate


def _contains(term, target):
    stack = [term]
    seen = set()
    while stack:
        node = stack.pop()
        if node is target:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(node.args)
    return False


class TestShrinkTerm:
    def test_reduces_to_the_guilty_variable(self):
        x = t.bv_var("x", 8)
        big = t.add(
            t.mul(x, t.bv_var("y", 8)),
            t.bvxor(t.bv_const(37, 8), t.bv_var("z", 8)),
        )
        shrunk = shrink_term(big, lambda c: _contains(c, x))
        assert shrunk is x

    def test_reduces_boolean_to_constant(self):
        p = t.bool_var("p")
        big = t.or_(t.and_(p, t.bool_var("q")), t.not_(p))
        # "evaluates to True when all variables are False" — TRUE is the
        # smallest term with that property.
        shrunk = shrink_term(
            big, lambda c: evaluate(c, {"p": False, "q": False}) is True
        )
        assert shrunk is t.TRUE

    def test_result_always_satisfies_the_predicate(self):
        x = t.bv_var("x", 16)
        big = t.sub(t.shl(x, t.bv_const(2, 16)), t.bv_var("w", 16))
        predicate = lambda c: _contains(c, x)
        shrunk = shrink_term(big, predicate)
        assert predicate(shrunk)

    def test_predicate_exceptions_treated_as_not_failing(self):
        x = t.bv_var("x", 8)
        big = t.add(x, t.mul(t.bv_var("y", 8), t.bv_const(3, 8)))

        def fragile(candidate):
            if not _contains(candidate, x):
                raise RuntimeError("lost the bug")
            return True

        assert _contains(shrink_term(big, fragile), x)

    def test_budget_caps_predicate_invocations(self):
        calls = [0]

        def counting(candidate):
            calls[0] += 1
            return False

        big = t.add(t.bv_var("x", 32), t.bv_var("y", 32))
        shrunk = shrink_term(big, counting, budget=5)
        assert shrunk is big
        assert calls[0] <= 5


class TestShrinkTuple:
    def test_positions_shrink_independently(self):
        x, y = t.bv_var("x", 8), t.bv_var("y", 8)
        witnesses = (
            t.add(x, t.bv_const(9, 8)),
            t.mul(y, t.bvnot(t.bv_var("z", 8))),
        )
        shrunk = shrink(
            witnesses,
            lambda ws: _contains(ws[0], x) and _contains(ws[1], y),
        )
        assert shrunk == (x, y)

    def test_single_witness_degenerates_to_shrink_term(self):
        p = t.bool_var("p")
        witnesses = (t.and_(p, t.or_(p, t.bool_var("q"))),)
        shrunk = shrink(witnesses, lambda ws: _contains(ws[0], p))
        assert shrunk == (p,)
