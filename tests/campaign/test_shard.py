"""Sharding strategies: determinism, balance, and dedup-class cohesion."""

import pytest

from repro.campaign import ShardItem, plan_shards


def items(*names, weights=None, groups=None):
    weights = weights or [1] * len(names)
    groups = groups or [None] * len(names)
    return [
        ShardItem(name=n, weight=w, group=g)
        for n, w, g in zip(names, weights, groups)
    ]


class TestRoundRobin:
    def test_cycles_over_shards(self):
        plan = plan_shards(items("a", "b", "c", "d", "e"), 2, "round_robin")
        assert plan.shards == [["a", "c", "e"], ["b", "d"]]
        assert plan.shard_of("d") == 1

    def test_single_shard(self):
        plan = plan_shards(items("a", "b"), 1, "round_robin")
        assert plan.shards == [["a", "b"]]


class TestSizeBalanced:
    def test_heavy_item_isolated(self):
        plan = plan_shards(
            items("big", "s1", "s2", "s3", weights=[10, 1, 1, 1]),
            2,
            "size_balanced",
        )
        # LPT: the weight-10 item fills one shard, the three light ones
        # balance onto the other.
        big_shard = plan.shard_of("big")
        assert all(
            plan.shard_of(n) != big_shard for n in ("s1", "s2", "s3")
        )

    def test_deterministic(self):
        batch = items("a", "b", "c", "d", "e", weights=[3, 1, 4, 1, 5])
        first = plan_shards(batch, 3, "size_balanced")
        second = plan_shards(batch, 3, "size_balanced")
        assert first.shards == second.shards
        assert first.assignment == second.assignment


class TestGroupCohesion:
    def test_group_members_share_a_shard(self):
        plan = plan_shards(
            items(
                "rep", "x", "dup1", "y", "dup2",
                groups=["g", None, "g", None, "g"],
            ),
            2,
            "round_robin",
        )
        assert (
            plan.shard_of("rep")
            == plan.shard_of("dup1")
            == plan.shard_of("dup2")
        )

    def test_group_weight_is_summed_for_balancing(self):
        plan = plan_shards(
            items(
                "a", "b", "c", "d",
                weights=[3, 3, 3, 9],
                groups=["g", "g", "g", None],
            ),
            2,
            "size_balanced",
        )
        # The group (weight 9) and the single weight-9 item each take a
        # shard of their own.
        assert plan.shard_of("a") != plan.shard_of("d")
        assert plan.shard_of("a") == plan.shard_of("b") == plan.shard_of("c")


class TestValidation:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            plan_shards(items("a"), 1, "alphabetical")

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            plan_shards(items("a", "a"), 1)

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            plan_shards(items("a"), 0)

    def test_clamps_shards_to_item_count(self):
        plan = plan_shards(items("a", "b"), 5)
        assert plan.n_shards == 2
        assert all(shard for shard in plan.shards)
