"""Merge determinism: shard completion order must not affect the report."""

import random

from repro.campaign import Journal, load_state, merge_campaign, outcome_to_json
from repro.campaign.merge import build_status
from repro.tv.batch import BatchResult, merge_results
from repro.tv.driver import Category, TvOutcome


def outcome(name, category=Category.SUCCEEDED, **kw):
    return TvOutcome(name, category, **kw)


MANIFEST = {
    "functions": ["a", "b", "c", "d", "e"],
    "run_names": ["a", "b", "d", "e"],
    "replay": {"c": "a"},
    "dedup_classes": 4,
    "shard_lists": [["a", "c", "e"], ["b", "d"]],
}


def journal_state(tmp_path, events):
    directory = str(tmp_path)
    with Journal(directory) as journal:
        for event in events:
            journal.append(event)
    return load_state(directory)


def done(name, **kw):
    return {
        "event": "done",
        "fn": name,
        "attempt": 1,
        "outcome": outcome_to_json(outcome(name, **kw)),
    }


def start(name):
    return {"event": "start", "fn": name, "attempt": 1}


class TestMergeResults:
    def test_byte_identical_regardless_of_order(self):
        outcomes = [
            outcome("f3", Category.TIMEOUT, failure_class="timeout", seconds=2.0),
            outcome("f1", seconds=1.0),
            outcome("f2", Category.OOM, failure_class="oom", seconds=0.5),
            outcome("f4", seconds=0.1),
        ]
        shards = [
            BatchResult(outcomes=[outcomes[0], outcomes[1]]),
            BatchResult(outcomes=[outcomes[2], outcomes[3]]),
        ]
        forward = merge_results(shards).summary()
        backward = merge_results(list(reversed(shards))).summary()
        assert forward == backward
        shuffled = shards[:]
        random.Random(5).shuffle(shuffled)
        assert merge_results(shuffled).summary() == forward

    def test_outcomes_sorted_by_function(self):
        merged = merge_results(
            [
                BatchResult(outcomes=[outcome("z"), outcome("m")]),
                BatchResult(outcomes=[outcome("a")]),
            ]
        )
        assert [o.function for o in merged.outcomes] == ["a", "m", "z"]


class TestMergeCampaign:
    def _events(self):
        return [
            start("a"),
            done("a", seconds=1.0),
            start("b"),
            done("b", category=Category.TIMEOUT, failure_class="timeout"),
            start("d"),
            done("d"),
            start("e"),
            done("e"),
        ]

    def test_complete_campaign_accounts_every_function_once(self, tmp_path):
        state = journal_state(tmp_path, self._events())
        report = merge_campaign(MANIFEST, state)
        assert report.complete
        names = [o.function for o in report.batch.outcomes]
        assert names == sorted(MANIFEST["functions"])
        assert len(names) == len(set(names))

    def test_replayed_duplicate_carries_markers(self, tmp_path):
        state = journal_state(tmp_path, self._events())
        report = merge_campaign(MANIFEST, state)
        by_name = {o.function: o for o in report.batch.outcomes}
        assert by_name["c"].deduped
        assert by_name["c"].dedup_of == "a"
        assert by_name["c"].category == Category.SUCCEEDED
        assert report.batch.deduped_functions == 1

    def test_quarantine_synthesizes_crash_outcome(self, tmp_path):
        events = self._events()[:6]  # a, b, d done; e never finishes
        events += [
            start("e"),
            {"event": "quarantine", "fn": "e", "reason": "poison pill"},
        ]
        state = journal_state(tmp_path, events)
        report = merge_campaign(MANIFEST, state)
        assert report.complete
        by_name = {o.function: o for o in report.batch.outcomes}
        assert by_name["e"].category == Category.OTHER
        assert by_name["e"].failure_class == "crash"
        assert "poison pill" in by_name["e"].detail
        assert report.quarantined == {"e": "poison pill"}

    def test_partial_campaign_is_incomplete(self, tmp_path):
        state = journal_state(tmp_path, self._events()[:4])  # a, b only
        report = merge_campaign(MANIFEST, state)
        assert not report.complete
        assert report.accounted == 3  # a, b, and c replayed from a
        assert "INCOMPLETE" in report.summary()

    def test_summary_without_timing_is_stable(self, tmp_path):
        state = journal_state(tmp_path, self._events())
        rendered = merge_campaign(MANIFEST, state).summary(include_timing=False)
        assert "time:" not in rendered
        assert "solver:" not in rendered
        again = merge_campaign(MANIFEST, state).summary(include_timing=False)
        assert rendered == again

    def test_failure_classes_render_in_fixed_order(self, tmp_path):
        state = journal_state(tmp_path, self._events())
        rendered = merge_campaign(MANIFEST, state).summary()
        assert (
            "failure classes: timeout=1 oom=0 inadequate_sync=0 crash=0"
            in rendered
        )

    def test_shard_rows(self, tmp_path):
        state = journal_state(tmp_path, self._events())
        report = merge_campaign(MANIFEST, state)
        shard0, shard1 = report.shards
        assert (shard0.total, shard0.done, shard0.replayed) == (3, 2, 1)
        assert (shard1.total, shard1.done, shard1.replayed) == (2, 2, 0)


class TestBuildStatus:
    def test_counts(self, tmp_path):
        events = self._partial_events()
        state = journal_state(tmp_path, events)
        status = build_status(MANIFEST, state)
        assert status.total_functions == 5
        assert status.done == 2  # a, b
        assert status.replay_ready == 1  # c rides on a
        assert status.in_flight == 1  # d started, never done
        assert status.pending == 2  # d and e unaccounted
        assert not status.complete
        rendered = status.render()
        assert "in-flight=1" in rendered
        assert "campaign status: in progress" in rendered

    def _partial_events(self):
        return [
            start("a"),
            done("a"),
            start("b"),
            done("b"),
            start("d"),
        ]
