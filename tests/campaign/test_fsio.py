"""Durable-publication helper: atomicity, cleanup, degradation."""

import os

import pytest

from repro.fsio import atomic_publish, fsync_dir


class TestAtomicPublish:
    def test_creates_file_and_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "file.json"
        atomic_publish(str(target), '{"x": 1}')
        assert target.read_text() == '{"x": 1}'

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "file.json"
        atomic_publish(str(target), "old")
        atomic_publish(str(target), "new")
        assert target.read_text() == "new"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_publish(str(tmp_path / "file.json"), "data")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["file.json"]

    def test_failed_replace_cleans_temp_and_raises(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "file.json"
        atomic_publish(str(target), "old")

        def broken_replace(src, dst):
            raise OSError("injected rename failure")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="injected"):
            atomic_publish(str(target), "new")
        monkeypatch.undo()
        # The old content survives and no temp file is left behind.
        assert target.read_text() == "old"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["file.json"]

    def test_relative_path_in_cwd(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        atomic_publish("plain.txt", "data")
        assert (tmp_path / "plain.txt").read_text() == "data"


class TestFsyncDir:
    def test_missing_directory_is_best_effort(self, tmp_path):
        fsync_dir(str(tmp_path / "nope"))  # must not raise

    def test_real_directory_syncs(self, tmp_path):
        fsync_dir(str(tmp_path))  # must not raise


class TestPublishers:
    """The two call sites publish through atomic_publish."""

    def test_manifest_publication_leaves_no_temp(self, tmp_path):
        from repro.campaign.journal import load_manifest, write_manifest

        manifest = {"version": 1, "functions": ["a"]}
        write_manifest(str(tmp_path), manifest)
        assert load_manifest(str(tmp_path)) == manifest
        assert not [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]

    def test_cache_write_degrades_on_failure(self, tmp_path, monkeypatch):
        """A read-only cache mount must not break validation: the disk
        write becomes a no-op and the in-memory cache still serves."""
        from repro.smt import QueryCache, Result, Solver, t

        def broken(path, text):
            raise OSError("read-only filesystem")

        monkeypatch.setattr("repro.smt.cache.atomic_publish", broken)
        cache = QueryCache(cache_dir=str(tmp_path / "cache"))
        query = t.ult(t.bv_var("a", 8), t.bv_const(3, 8))
        assert Solver(cache=cache).check_sat(query) is Result.SAT
        assert Solver(cache=cache).check_sat(query) is Result.SAT
        assert not list((tmp_path / "cache").glob("**/*.tmp"))
