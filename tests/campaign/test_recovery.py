"""Crash recovery end to end: SIGKILL injection, resume, quarantine.

These tests drive real spawn-based worker pools; the injector hook
(:mod:`repro.campaign.hooks`) is configured through environment variables,
which spawn children inherit.  The corpus is tiny (scale=8) so each
campaign run takes a couple of seconds.
"""

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignError,
    CampaignInterrupted,
    load_manifest,
    load_state,
    read_events,
    resume_campaign,
    run_campaign,
)
from repro.campaign.hooks import (
    KILL_ALWAYS_ENV,
    KILL_DIR_ENV,
    KILL_ONCE_ENV,
    sigkill_injector,
)
from repro.tv.driver import Category

VICTIM = "fn_succeeded_0000"


def config(**overrides):
    settings = dict(
        scale=8,
        seed=7,
        shards=2,
        jobs=2,
        wall_budget=30.0,
        backoff_seconds=0.05,  # keep retry sleeps out of the test budget
    )
    settings.update(overrides)
    return CampaignConfig(**settings)


def requeues_of(directory, name):
    return [
        e
        for e in read_events(directory)
        if e["event"] == "requeue" and e.get("fn") == name
    ]


class TestHaltAndResume:
    def test_interrupted_plus_resumed_equals_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        plain_dir = str(tmp_path / "plain")
        plain = run_campaign(plain_dir, config())

        crash_dir = str(tmp_path / "crash")
        monkeypatch.setenv(KILL_ONCE_ENV, VICTIM)
        monkeypatch.setenv(KILL_DIR_ENV, crash_dir)
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                crash_dir,
                config(halt_on_worker_death=True, validate=sigkill_injector),
            )

        state = load_state(str(crash_dir))
        assert VICTIM in state.orphans()
        assert VICTIM not in state.completed

        # The kill-once marker survives in crash_dir, so resume (which
        # re-resolves the injector hook from the manifest, env still set)
        # does not re-kill: a true transient fault.
        report = resume_campaign(crash_dir)
        assert report.complete
        assert report.quarantined == {}

        # Every in-flight function was re-queued exactly once.
        for orphan in state.orphans():
            assert len(requeues_of(crash_dir, orphan)) == 1

        # The final report is identical to the uninterrupted run's, modulo
        # wall-clock and solver-counter lines.
        assert report.summary(include_timing=False) == plain.summary(
            include_timing=False
        )
        assert report.function_table() == plain.function_table()

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="manifest"):
            resume_campaign(str(tmp_path / "void"))

    def test_second_run_into_same_directory_refused(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(directory, config(scale=4))
        with pytest.raises(CampaignError, match="resume"):
            run_campaign(directory, config(scale=4))


class TestInRunRetry:
    def test_transient_kill_self_heals_with_backoff(
        self, tmp_path, monkeypatch
    ):
        directory = str(tmp_path / "camp")
        monkeypatch.setenv(KILL_ONCE_ENV, VICTIM)
        monkeypatch.setenv(KILL_DIR_ENV, directory)
        report = run_campaign(directory, config(validate=sigkill_injector))
        assert report.complete
        assert report.quarantined == {}
        by_name = {o.function: o for o in report.batch.outcomes}
        assert by_name[VICTIM].category == Category.SUCCEEDED
        events = requeues_of(directory, VICTIM)
        assert len(events) == 1
        assert events[0]["delay"] == pytest.approx(0.05)


class TestQuarantine:
    def test_poison_pill_quarantined_after_two_kills(
        self, tmp_path, monkeypatch
    ):
        directory = str(tmp_path / "camp")
        monkeypatch.setenv(KILL_ALWAYS_ENV, VICTIM)
        report = run_campaign(directory, config(validate=sigkill_injector))
        assert report.complete
        assert list(report.quarantined) == [VICTIM]
        by_name = {o.function: o for o in report.batch.outcomes}
        assert by_name[VICTIM].failure_class == "crash"
        assert by_name[VICTIM].category == Category.OTHER
        # Exactly max_kills starts, one requeue, then quarantine.
        starts = [
            e
            for e in read_events(directory)
            if e["event"] == "start" and e["fn"] == VICTIM
        ]
        assert len(starts) == 2
        assert len(requeues_of(directory, VICTIM)) == 1
        # Everything else completed normally.
        others = [o for o in report.batch.outcomes if o.function != VICTIM]
        assert all(o.failure_class != "crash" for o in others)

    def test_kill_counts_survive_restarts(self, tmp_path, monkeypatch):
        """Two halted runs, each killing the victim once: the resume after
        the second derives kills=2 from the journal and quarantines the
        orphan without scheduling it again."""
        directory = str(tmp_path / "camp")
        monkeypatch.setenv(KILL_ALWAYS_ENV, VICTIM)
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                directory,
                config(halt_on_worker_death=True, validate=sigkill_injector),
            )
        with pytest.raises(CampaignInterrupted):
            resume_campaign(directory)
        report = resume_campaign(directory)
        assert report.complete
        assert list(report.quarantined) == [VICTIM]
        assert "worker deaths" in report.quarantined[VICTIM]


class TestProcessModeCampaign:
    """Process-parallel racing must never change campaign verdicts.

    On a starved box the pool clamps the race width to the worker's slot
    share (possibly a single racer), which is exactly the degenerate case
    most likely to diverge — so these tests make no assumption about CPU
    count and hold the report to byte-identity either way.
    """

    def test_report_byte_identical_to_single_solver(self, tmp_path):
        plain = run_campaign(str(tmp_path / "plain"), config(portfolio=1))
        raced_dir = str(tmp_path / "raced")
        raced = run_campaign(
            raced_dir,
            config(
                portfolio=4, portfolio_mode="processes", portfolio_probe=0
            ),
        )
        assert raced.complete
        assert raced.summary(include_timing=False) == plain.summary(
            include_timing=False
        )
        assert raced.function_table() == plain.function_table()

    def test_mode_and_probe_survive_interrupt_and_resume(
        self, tmp_path, monkeypatch
    ):
        plain = run_campaign(str(tmp_path / "plain"), config(portfolio=1))

        crash_dir = str(tmp_path / "crash")
        monkeypatch.setenv(KILL_ONCE_ENV, VICTIM)
        monkeypatch.setenv(KILL_DIR_ENV, crash_dir)
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                crash_dir,
                config(
                    portfolio=4,
                    portfolio_mode="processes",
                    portfolio_probe=0,
                    halt_on_worker_death=True,
                    validate=sigkill_injector,
                ),
            )
        manifest = load_manifest(crash_dir)
        assert manifest["portfolio"] == 4
        assert manifest["portfolio_mode"] == "processes"
        assert manifest["portfolio_probe"] == 0

        report = resume_campaign(crash_dir)
        assert report.complete
        assert report.summary(include_timing=False) == plain.summary(
            include_timing=False
        )
        assert report.function_table() == plain.function_table()
