"""Supervisor behaviors not covered by the recovery suite: dedup-aware
sharding, custom corpora, and status errors."""

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignError,
    campaign_status,
    load_manifest,
    resume_campaign,
    run_campaign,
)
from repro.workloads import FunctionShape
from repro.workloads.corpus import CorpusSpec, FunctionSpec

SMALL = FunctionShape(straight_segments=1, ops_per_segment=3)


def clone_corpus():
    return CorpusSpec(
        functions=[
            FunctionSpec("alpha_one", SMALL, seed=7, expect="succeeded"),
            FunctionSpec("beta_solo", SMALL, seed=9, expect="succeeded"),
            FunctionSpec("alpha_two", SMALL, seed=7, expect="succeeded"),
            FunctionSpec("alpha_three", SMALL, seed=7, expect="succeeded"),
        ]
    )


class TestDedupAwareCampaign:
    def test_equivalence_class_stays_on_one_shard(self, tmp_path):
        directory = str(tmp_path / "camp")
        report = run_campaign(
            directory,
            CampaignConfig(shards=2, jobs=2, wall_budget=30.0),
            corpus=clone_corpus(),
        )
        manifest = load_manifest(directory)
        assert manifest["replay"] == {
            "alpha_two": "alpha_one",
            "alpha_three": "alpha_one",
        }
        shard_of = {
            name: index
            for index, shard in enumerate(manifest["shard_lists"])
            for name in shard
        }
        assert (
            shard_of["alpha_one"]
            == shard_of["alpha_two"]
            == shard_of["alpha_three"]
        )
        assert report.complete
        by_name = {o.function: o for o in report.batch.outcomes}
        assert by_name["alpha_two"].deduped
        assert by_name["alpha_two"].dedup_of == "alpha_one"
        assert not by_name["alpha_one"].deduped
        assert report.batch.deduped_functions == 2
        # Replays show up in the shard accounting, not as validated work.
        replayed = sum(s.replayed for s in report.shards)
        assert replayed == 2

    def test_dedup_off_runs_every_function(self, tmp_path):
        directory = str(tmp_path / "camp")
        report = run_campaign(
            directory,
            CampaignConfig(shards=2, jobs=2, wall_budget=30.0, dedup=False),
            corpus=clone_corpus(),
        )
        manifest = load_manifest(directory)
        assert manifest["replay"] == {}
        assert report.complete
        assert all(not o.deduped for o in report.batch.outcomes)


class TestCustomCorpus:
    def test_resume_requires_the_corpus_again(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(
            directory,
            CampaignConfig(shards=1, jobs=1, wall_budget=30.0),
            corpus=clone_corpus(),
        )
        with pytest.raises(CampaignError, match="custom corpus"):
            resume_campaign(directory)
        # With the corpus supplied, resume of a finished campaign is a
        # no-op merge.
        report = resume_campaign(directory, corpus=clone_corpus())
        assert report.complete

    def test_status_needs_no_corpus(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(
            directory,
            CampaignConfig(shards=1, jobs=1, wall_budget=30.0),
            corpus=clone_corpus(),
        )
        status = campaign_status(directory)
        assert status.complete
        assert status.replay_ready == 2


class TestStatusErrors:
    def test_status_without_manifest_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="manifest"):
            campaign_status(str(tmp_path / "void"))


class TestPortfolioManifestRoundTrip:
    """``--portfolio N`` must survive halt/resume through the manifest so
    resumed shards race with the same width (outcome identity)."""

    def test_portfolio_width_persisted_and_resumed(self, tmp_path):
        directory = str(tmp_path / "camp")
        report = run_campaign(
            directory,
            CampaignConfig(
                shards=1, jobs=1, wall_budget=30.0, portfolio=3
            ),
            corpus=clone_corpus(),
        )
        assert report.complete
        manifest = load_manifest(directory)
        assert manifest["portfolio"] == 3
        # Resume of a complete campaign replays the merged report with
        # the persisted width (no KeyError / silent reset to 1).
        resumed = resume_campaign(directory, corpus=clone_corpus())
        assert resumed.complete

    def test_default_width_is_single_solver(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(
            directory,
            CampaignConfig(shards=1, jobs=1, wall_budget=30.0),
            corpus=clone_corpus(),
        )
        assert load_manifest(directory)["portfolio"] == 1


class TestTargetManifestRoundTrip:
    """``--target`` must survive halt/resume through the manifest, and a
    resume under a *different* target must refuse rather than silently
    mix per-ISA results in one campaign directory."""

    def _run(self, directory, target=None):
        config = (
            CampaignConfig(shards=1, jobs=1, wall_budget=30.0, target=target)
            if target
            else CampaignConfig(shards=1, jobs=1, wall_budget=30.0)
        )
        return run_campaign(directory, config, corpus=clone_corpus())

    def test_target_persisted_in_manifest(self, tmp_path):
        directory = str(tmp_path / "camp")
        report = self._run(directory, target="vriscv")
        assert report.complete
        assert load_manifest(directory)["target"] == "vriscv"
        assert "target: vriscv" in report.summary()

    def test_default_target_is_vx86(self, tmp_path):
        directory = str(tmp_path / "camp")
        self._run(directory)
        assert load_manifest(directory)["target"] == "vx86"

    def test_resume_refuses_target_mismatch(self, tmp_path):
        directory = str(tmp_path / "camp")
        self._run(directory, target="vriscv")
        with pytest.raises(CampaignError, match="refusing to resume"):
            resume_campaign(
                directory, corpus=clone_corpus(), target="vx86"
            )

    def test_resume_accepts_matching_or_unspecified_target(self, tmp_path):
        directory = str(tmp_path / "camp")
        self._run(directory, target="vriscv")
        assert resume_campaign(
            directory, corpus=clone_corpus(), target="vriscv"
        ).complete
        assert resume_campaign(directory, corpus=clone_corpus()).complete

    def test_legacy_manifest_without_target_resumes_as_vx86(self, tmp_path):
        directory = str(tmp_path / "camp")
        self._run(directory)
        import json
        import os

        path = os.path.join(directory, "manifest.json")
        with open(path) as handle:
            manifest = json.load(handle)
        del manifest["target"]
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CampaignError, match="refusing to resume"):
            resume_campaign(directory, corpus=clone_corpus(), target="vriscv")
        assert resume_campaign(
            directory, corpus=clone_corpus(), target="vx86"
        ).complete
