"""Journal durability: atomic appends, torn tails, ledger derivation."""

from repro.campaign import (
    Journal,
    load_manifest,
    load_state,
    outcome_from_json,
    outcome_to_json,
    read_events,
    write_manifest,
)
from repro.campaign.journal import journal_path
from repro.smt import QueryStats
from repro.tv.driver import Category, TvOutcome


def outcome(name="fn", category=Category.SUCCEEDED, **kw):
    return TvOutcome(name, category, **kw)


class TestOutcomeSerialization:
    def test_roundtrip(self):
        stats = QueryStats(queries=7, sat_calls=2, cache_hits=3, cache_misses=4)
        before = outcome(
            detail="ok",
            seconds=1.5,
            code_size=12,
            sync_points=4,
            solver_stats=stats,
            failure_class=None,
        )
        after = outcome_from_json(outcome_to_json(before))
        assert after.function == before.function
        assert after.category == before.category
        assert after.seconds == before.seconds
        assert after.solver_stats.queries == 7
        assert after.solver_stats.cache_hits == 3

    def test_failure_class_and_dedup_markers_survive(self):
        before = outcome(
            category=Category.TIMEOUT,
            failure_class="timeout",
            deduped=True,
            dedup_of="rep",
        )
        after = outcome_from_json(outcome_to_json(before))
        assert after.failure_class == "timeout"
        assert after.deduped and after.dedup_of == "rep"

    def test_report_is_dropped(self):
        payload = outcome_to_json(outcome())
        assert "report" not in payload


class TestManifest:
    def test_write_and_load(self, tmp_path):
        directory = str(tmp_path / "c")
        write_manifest(directory, {"functions": ["a"], "shards": 2})
        assert load_manifest(directory) == {"functions": ["a"], "shards": 2}

    def test_no_temp_file_left_behind(self, tmp_path):
        directory = str(tmp_path / "c")
        write_manifest(directory, {"x": 1})
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []


class TestJournalAppend:
    def test_events_roundtrip(self, tmp_path):
        directory = str(tmp_path)
        with Journal(directory) as journal:
            journal.append({"event": "start", "fn": "a", "attempt": 1})
            journal.append(
                {
                    "event": "done",
                    "fn": "a",
                    "attempt": 1,
                    "outcome": outcome_to_json(outcome("a")),
                }
            )
        events = read_events(directory)
        assert [e["event"] for e in events] == ["start", "done"]

    def test_torn_tail_is_skipped(self, tmp_path):
        directory = str(tmp_path)
        with Journal(directory) as journal:
            journal.append({"event": "start", "fn": "a", "attempt": 1})
        with open(journal_path(directory), "a") as handle:
            handle.write('{"event": "done", "fn": "a", "outc')  # crash mid-write
        events = read_events(directory)
        assert [e["event"] for e in events] == ["start"]

    def test_append_after_torn_tail_would_still_parse_prefix(self, tmp_path):
        # Resume opens the journal in append mode; the torn line stays torn
        # but new whole lines after it are read fine.
        directory = str(tmp_path)
        with Journal(directory) as journal:
            journal.append({"event": "start", "fn": "a", "attempt": 1})
        with open(journal_path(directory), "a") as handle:
            handle.write("garbage-not-json\n")
        with Journal(directory) as journal:
            journal.append({"event": "requeue", "fn": "a", "attempt": 1})
        assert [e["event"] for e in read_events(directory)] == [
            "start",
            "requeue",
        ]

    def test_missing_journal_is_empty(self, tmp_path):
        assert read_events(str(tmp_path / "void")) == []


class TestLedgerDerivation:
    def _journal(self, tmp_path, events):
        directory = str(tmp_path)
        with Journal(directory) as journal:
            for event in events:
                journal.append(event)
        return load_state(directory)

    def test_completed_function(self, tmp_path):
        state = self._journal(
            tmp_path,
            [
                {"event": "start", "fn": "a", "attempt": 1},
                {
                    "event": "done",
                    "fn": "a",
                    "attempt": 1,
                    "outcome": outcome_to_json(outcome("a")),
                },
            ],
        )
        assert state.completed == {"a"}
        assert state.orphans() == []
        assert state.outcome("a").category == Category.SUCCEEDED

    def test_in_flight_function_is_an_orphan_but_not_a_kill(self, tmp_path):
        # A bare interrupted start (supervisor crash) re-queues the
        # function without charging the poison-pill counter.
        state = self._journal(
            tmp_path, [{"event": "start", "fn": "a", "attempt": 1}]
        )
        assert state.orphans() == ["a"]
        assert state.ledger("a").kills == 0

    def test_death_requeue_is_not_an_orphan_and_counts_a_kill(self, tmp_path):
        # start + requeue: the supervisor already acknowledged the death
        # and put the function back on its queue — only a *second* crash
        # (a start with neither done nor requeue after it) re-orphans it.
        state = self._journal(
            tmp_path,
            [
                {"event": "start", "fn": "a", "attempt": 1},
                {
                    "event": "requeue",
                    "fn": "a",
                    "attempt": 1,
                    "delay": 0.5,
                    "death": True,
                },
            ],
        )
        assert state.orphans() == []
        assert state.ledger("a").kills == 1

    def test_kill_count_accumulates_across_attempts(self, tmp_path):
        state = self._journal(
            tmp_path,
            [
                {"event": "start", "fn": "a", "attempt": 1},
                {"event": "requeue", "fn": "a", "attempt": 1, "death": True},
                {"event": "start", "fn": "a", "attempt": 2},
                {"event": "requeue", "fn": "a", "attempt": 2, "death": True},
            ],
        )
        assert state.ledger("a").kills == 2
        assert state.orphans() == []

    def test_halt_charges_the_named_function(self, tmp_path):
        # halt_on_worker_death journals the victim's name: the death
        # counts toward its poison-pill budget across the restart, while
        # a bystander in flight at the halt is not charged.
        state = self._journal(
            tmp_path,
            [
                {"event": "start", "fn": "victim", "attempt": 1},
                {"event": "start", "fn": "bystander", "attempt": 1},
                {"event": "halt", "fn": "victim", "reason": "worker died"},
            ],
        )
        assert state.ledger("victim").kills == 1
        assert state.ledger("bystander").kills == 0
        assert sorted(state.orphans()) == ["bystander", "victim"]
        assert state.halts == 1

    def test_quarantine_excludes_from_orphans(self, tmp_path):
        state = self._journal(
            tmp_path,
            [
                {"event": "start", "fn": "a", "attempt": 1},
                {"event": "quarantine", "fn": "a", "reason": "poison pill"},
            ],
        )
        assert state.orphans() == []
        assert state.quarantined == {"a": "poison pill"}

    def test_halts_counted(self, tmp_path):
        state = self._journal(tmp_path, [{"event": "halt", "reason": "x"}])
        assert state.halts == 1
