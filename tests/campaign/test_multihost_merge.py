"""Multi-host journals: tags, idempotent acceptance, deterministic merge.

These tests construct journals directly (no network, no subprocesses) to
pin the invariants the distributed service relies on: host/worker tags
are inert to the loader, the first ``done`` per function wins, duplicate
results are tallied but never double-counted, and the merged report is
byte-identical no matter which hosts completed which units in what order.
"""

from repro.campaign.journal import (
    Journal,
    load_state,
    outcome_to_json,
    write_manifest,
)
from repro.campaign.merge import build_status, merge_campaign
from repro.tv.driver import Category, TvOutcome

MANIFEST = {
    "version": 1,
    "corpus": {"kind": "custom"},
    "wall_budget": None,
    "shards": 2,
    "jobs": 1,
    "cache_dir": "unused",
    "dedup": True,
    "strategy": "round_robin",
    "max_kills": 2,
    "backoff_seconds": 0.1,
    "halt_on_worker_death": False,
    "validate": None,
    "functions": ["fn_a", "fn_b", "fn_c", "fn_dup"],
    "run_names": ["fn_a", "fn_b", "fn_c"],
    "replay": {"fn_dup": "fn_a"},
    "dedup_classes": 1,
    "shard_lists": [["fn_a", "fn_dup"], ["fn_b", "fn_c"]],
}


def outcome_payload(name, category=Category.SUCCEEDED):
    return outcome_to_json(TvOutcome(name, category))


def journal_dir(tmp_path, name, events):
    directory = str(tmp_path / name)
    write_manifest(directory, MANIFEST)
    with Journal(directory) as journal:
        for event in events:
            journal.append(event)
    return directory


def done(name, shard, host=None, worker=None, category=Category.SUCCEEDED):
    event = {
        "event": "done",
        "fn": name,
        "shard": shard,
        "attempt": 1,
        "outcome": outcome_payload(name, category),
    }
    if host:
        event["host"] = host
    if worker:
        event["worker"] = worker
    return event


def start(name, shard, host=None, worker=None, attempt=1):
    event = {"event": "start", "fn": name, "shard": shard, "attempt": attempt}
    if host:
        event["host"] = host
    if worker:
        event["worker"] = worker
    return event


class TestHostTags:
    def test_tags_are_inert_to_the_loader(self, tmp_path):
        tagged = journal_dir(
            tmp_path,
            "tagged",
            [
                start("fn_a", 0, host="h1", worker="w1"),
                done("fn_a", 0, host="h1", worker="w1"),
                start("fn_b", 1, host="h2", worker="w2"),
                done("fn_b", 1, host="h2", worker="w2"),
                start("fn_c", 1, host="h1", worker="w1"),
                done("fn_c", 1, host="h1", worker="w1"),
            ],
        )
        plain = journal_dir(
            tmp_path,
            "plain",
            [
                start("fn_a", 0),
                done("fn_a", 0),
                start("fn_b", 1),
                done("fn_b", 1),
                start("fn_c", 1),
                done("fn_c", 1),
            ],
        )
        tagged_report = merge_campaign(MANIFEST, load_state(tagged))
        plain_report = merge_campaign(MANIFEST, load_state(plain))
        assert tagged_report.summary() == plain_report.summary()
        assert tagged_report.function_table() == plain_report.function_table()

    def test_completion_order_does_not_change_the_report(self, tmp_path):
        forward = journal_dir(
            tmp_path,
            "forward",
            [
                done("fn_a", 0, host="h1"),
                done("fn_b", 1, host="h2"),
                done("fn_c", 1, host="h1"),
            ],
        )
        scrambled = journal_dir(
            tmp_path,
            "scrambled",
            [
                done("fn_c", 1, host="h9"),
                done("fn_a", 0, host="h2"),
                done("fn_b", 1, host="h1"),
            ],
        )
        a = merge_campaign(MANIFEST, load_state(forward))
        b = merge_campaign(MANIFEST, load_state(scrambled))
        assert a.summary() == b.summary()
        assert a.function_table() == b.function_table()


class TestIdempotentAcceptance:
    def test_first_done_wins(self, tmp_path):
        directory = journal_dir(
            tmp_path,
            "dup",
            [
                done("fn_a", 0, worker="w1", category=Category.SUCCEEDED),
                # The same unit surfacing again from a presumed-dead
                # worker — with a different category, to prove which one
                # the merge uses.
                done("fn_a", 0, worker="w2", category=Category.TIMEOUT),
                done("fn_b", 1),
                done("fn_c", 1),
            ],
        )
        state = load_state(directory)
        assert state.ledger("fn_a").duplicates == 1
        assert state.outcome("fn_a").category == Category.SUCCEEDED
        report = merge_campaign(MANIFEST, state)
        assert report.complete
        # fn_a accounted once, replayed once (fn_dup), never twice.
        table = dict(
            (row[0], row[1]) for row in report.function_table()
        )
        assert table["fn_a"] == Category.SUCCEEDED
        assert table["fn_dup"] == Category.SUCCEEDED
        assert len(report.function_table()) == 4

    def test_explicit_duplicate_events_counted(self, tmp_path):
        directory = journal_dir(
            tmp_path,
            "dup2",
            [
                done("fn_a", 0, worker="w1"),
                {
                    "event": "duplicate",
                    "fn": "fn_a",
                    "shard": 0,
                    "attempt": 2,
                    "worker": "w2",
                    "host": "h2",
                },
            ],
        )
        state = load_state(directory)
        assert state.duplicates == 1
        assert state.ledger("fn_a").dones == 1  # not double-counted


class TestResumedMultiWorkerRun:
    def test_interrupted_multiworker_equals_uninterrupted(self, tmp_path):
        """The service acceptance property at the journal level: a run
        where one host died mid-lease (requeue + late duplicate) renders
        the same bytes as an undisturbed run."""
        undisturbed = journal_dir(
            tmp_path,
            "undisturbed",
            [
                start("fn_a", 0, host="h1", worker="w1"),
                done("fn_a", 0, host="h1", worker="w1"),
                start("fn_b", 1, host="h1", worker="w1"),
                done("fn_b", 1, host="h1", worker="w1"),
                start("fn_c", 1, host="h1", worker="w1"),
                done("fn_c", 1, host="h1", worker="w1"),
            ],
        )
        disturbed = journal_dir(
            tmp_path,
            "disturbed",
            [
                start("fn_a", 0, host="h1", worker="w1"),
                start("fn_b", 1, host="h2", worker="w2"),
                done("fn_b", 1, host="h2", worker="w2"),
                # h1 went silent holding fn_a: lease expired, re-queued.
                {
                    "event": "requeue",
                    "fn": "fn_a",
                    "shard": 0,
                    "attempt": 1,
                    "reason": "lease expired (L000001, worker w1 presumed dead)",
                    "delay": 0.0,
                    "death": False,
                    "worker": "w1",
                },
                start("fn_a", 0, host="h2", worker="w2", attempt=2),
                done("fn_a", 0, host="h2", worker="w2"),
                # ... and then h1's answer surfaced after all.
                {
                    "event": "duplicate",
                    "fn": "fn_a",
                    "shard": 0,
                    "attempt": 1,
                    "worker": "w1",
                    "host": "h1",
                },
                start("fn_c", 1, host="h2", worker="w2"),
                done("fn_c", 1, host="h2", worker="w2"),
            ],
        )
        a = merge_campaign(MANIFEST, load_state(undisturbed))
        b = merge_campaign(MANIFEST, load_state(disturbed))
        assert b.complete
        assert a.summary(include_timing=False) == b.summary(
            include_timing=False
        )
        assert a.function_table() == b.function_table()

    def test_status_counts_retries_and_duplicates(self, tmp_path):
        directory = journal_dir(
            tmp_path,
            "status",
            [
                start("fn_a", 0, host="h1", worker="w1"),
                {
                    "event": "requeue",
                    "fn": "fn_a",
                    "shard": 0,
                    "attempt": 1,
                    "reason": "lease expired",
                    "delay": 0.0,
                    "death": False,
                },
                start("fn_a", 0, host="h2", worker="w2", attempt=2),
                done("fn_a", 0, host="h2", worker="w2"),
                {
                    "event": "duplicate",
                    "fn": "fn_a",
                    "shard": 0,
                    "attempt": 1,
                    "worker": "w1",
                },
                start("fn_b", 1, host="h1", worker="w1"),
                {
                    "event": "requeue",
                    "fn": "fn_b",
                    "shard": 1,
                    "attempt": 1,
                    "reason": "worker process died (exitcode=-9)",
                    "delay": 0.1,
                    "death": True,
                },
            ],
        )
        status = build_status(MANIFEST, load_state(directory))
        assert status.retries == 2
        assert status.worker_deaths == 1
        assert status.duplicates == 1
        rendered = status.render()
        assert "requeues=2" in rendered
        assert "worker-deaths=1" in rendered
        assert "duplicate-results=1" in rendered
