"""Instruction selection to Virtual RISC-V: lowering shapes, the reused
combines, and bug-injection detection parity with the vx86 backend."""

import pytest

from repro.isel import BugMode, IselError, IselOptions
from repro.isel.riscv import select_function
from repro.llvm import parse_module
from repro.vriscv.insns import Imm, XReg


def lower(source, name=None, options=None):
    module = parse_module(source)
    function = (
        module.function(name) if name else next(iter(module.functions.values()))
    )
    return module, *select_function(module, function, options)


def opcodes(machine, block):
    return [instruction.opcode for instruction in machine.block(block).instructions]


class TestBasicLowering:
    def test_arguments_copied_from_abi_registers(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %a, i32 %b, i32 %c) {\nentry:\n  ret i32 %a\n}"
        )
        prologue = machine.block(".LBB0").instructions[:3]
        sources = [instruction.operands[0] for instruction in prologue]
        assert [s.name for s in sources] == ["a0", "a1", "a2"]
        assert all(s.width == 32 for s in sources)

    def test_return_through_a0(self):
        _, machine, _ = lower("define i32 @f(i32 %a) {\nentry:\n  ret i32 %a\n}")
        tail = machine.block(".LBB0").instructions[-2:]
        assert tail[0].opcode == "COPY"
        assert tail[0].result == XReg("a0", 32)
        assert tail[1].opcode == "ret"

    def test_constants_materialize_with_li(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %a) {\nentry:\n"
            "  %x = mul i32 %a, %a\n  ret i32 7\n}"
        )
        assert "li" in opcodes(machine, ".LBB0")
        assert "mov" not in opcodes(machine, ".LBB0")

    def test_fused_compare_branch_uses_bltu(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n"
            "  %c = icmp ult i32 %a, %b\n"
            "  br i1 %c, label %x, label %y\n"
            "x:\n  ret i32 1\ny:\n  ret i32 2\n}"
        )
        ops = opcodes(machine, ".LBB0")
        assert "bltu" in ops and "j" in ops
        assert "slt" not in ops and "sltu" not in ops  # fused, not materialized

    def test_swapped_predicate_branch(self):
        # sgt has no direct branch: blt with swapped operands.
        _, machine, _ = lower(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n"
            "  %c = icmp sgt i32 %a, %b\n"
            "  br i1 %c, label %x, label %y\n"
            "x:\n  ret i32 1\ny:\n  ret i32 2\n}"
        )
        branch = next(
            i
            for i in machine.block(".LBB0").instructions
            if i.opcode == "blt"
        )
        # Operand order is (b, a): sgt a b  <=>  blt b a.
        assert branch.operands[0] is not branch.operands[1]

    def test_compare_against_zero_uses_zero_register(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %a) {\nentry:\n"
            "  %c = icmp eq i32 %a, 0\n"
            "  br i1 %c, label %x, label %y\n"
            "x:\n  ret i32 1\ny:\n  ret i32 2\n}"
        )
        branch = next(
            i for i in machine.block(".LBB0").instructions if i.opcode == "beq"
        )
        assert isinstance(branch.operands[1], XReg)
        assert branch.operands[1].name == "zero"

    def test_materialized_equality_via_xor_seqz(self):
        _, machine, _ = lower(
            "define i1 @f(i32 %a, i32 %b) {\nentry:\n"
            "  %c = icmp eq i32 %a, %b\n  ret i1 %c\n}"
        )
        ops = opcodes(machine, ".LBB0")
        assert "xor" in ops and "seqz" in ops

    def test_materialized_inverted_ordering_xors_with_one(self):
        _, machine, _ = lower(
            "define i1 @f(i32 %a, i32 %b) {\nentry:\n"
            "  %c = icmp sge i32 %a, %b\n  ret i1 %c\n}"
        )
        instructions = machine.block(".LBB0").instructions
        assert any(i.opcode == "slt" for i in instructions)
        invert = next(i for i in instructions if i.opcode == "xor")
        assert invert.operands[1] == Imm(1, invert.operands[1].width)

    def test_select_lowers_to_sel(self):
        _, machine, _ = lower(
            "define i32 @f(i1 %c, i32 %a, i32 %b) {\nentry:\n"
            "  %r = select i1 %c, i32 %a, i32 %b\n  ret i32 %r\n}"
        )
        assert "sel" in opcodes(machine, ".LBB0")

    def test_division_lowers_to_riscv_opcodes(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %a, i32 %b) {\nentry:\n"
            "  %q = udiv i32 %a, %b\n  %r = srem i32 %q, %b\n  ret i32 %r\n}"
        )
        ops = opcodes(machine, ".LBB0")
        assert "divu" in ops and "rem" in ops

    def test_too_many_arguments_rejected(self):
        with pytest.raises(IselError):
            lower(
                "define i32 @f(i32 %a, i32 %b, i32 %c, i32 %d, i32 %e,"
                " i32 %g, i32 %h, i32 %i, i32 %j) {\nentry:\n  ret i32 %a\n}"
            )


class TestSharedCombines:
    WAW = """
@b = external global [8 x i8]
define void @foo() {
entry:
  store i16 0, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 2) to i16*)
  store i16 2, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 3) to i16*)
  store i16 1, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 0) to i16*)
  ret void
}
"""

    def test_store_merging_works_on_riscv_ir(self):
        _, machine, _ = lower(self.WAW, options=IselOptions(merge_stores=True))
        stores = [
            i for i in machine.block(".LBB0").instructions if i.opcode == "store"
        ]
        assert len(stores) == 2
        assert stores[0].operands[0].width_bytes == 4

    def test_buggy_store_merge_reorders_on_riscv_too(self):
        _, machine, _ = lower(
            self.WAW, options=IselOptions(bug=BugMode.WAW_STORE_MERGE)
        )
        stores = [
            i for i in machine.block(".LBB0").instructions if i.opcode == "store"
        ]
        assert len(stores) == 2
        assert stores[0].operands[0].disp == 3  # merged store moved late

    def test_mul_decompose_uses_shift_add(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %a) {\nentry:\n"
            "  %x = mul i32 %a, 9\n  ret i32 %x\n}",
            options=IselOptions(mul_decompose=True),
        )
        ops = opcodes(machine, ".LBB0")
        assert "sll" in ops and "mul" not in ops


class TestBugDetectionParity:
    """The seeded mis-compilation injectors must be *detected* on VRISC-V
    with the same sensitivity the vx86 pipeline has (ISSUE acceptance
    criterion)."""

    WAW = TestSharedCombines.WAW
    I96 = """
@a = external global i96, align 4
@b = external global i64, align 8
define void @foo() {
entry:
  %srcval = load i96, i96* @a, align 4
  %tmp96 = lshr i96 %srcval, 64
  %tmp64 = trunc i96 %tmp96 to i64
  store i64 %tmp64, i64* @b, align 8
  ret void
}
"""

    def _validate(self, source, isel, target):
        from repro.tv import TvOptions, validate_function

        module = parse_module(source)
        options = TvOptions(isel=isel, target=target)
        return validate_function(module, "foo", options)

    @pytest.mark.parametrize("target", ["vx86", "vriscv"])
    def test_waw_bug_detected_on_both_targets(self, target):
        from repro.tv.driver import Category

        outcome = self._validate(
            self.WAW, IselOptions(bug=BugMode.WAW_STORE_MERGE), target
        )
        assert outcome.category == Category.MISCOMPILED

    @pytest.mark.parametrize("target", ["vx86", "vriscv"])
    def test_correct_merge_validates_on_both_targets(self, target):
        outcome = self._validate(
            self.WAW, IselOptions(merge_stores=True), target
        )
        assert outcome.ok

    @pytest.mark.parametrize("target", ["vx86", "vriscv"])
    def test_narrowing_bug_detected_on_both_targets(self, target):
        from repro.tv.driver import Category

        outcome = self._validate(
            self.I96, IselOptions(bug=BugMode.LOAD_NARROWING), target
        )
        assert outcome.category == Category.MISCOMPILED

    @pytest.mark.parametrize("target", ["vx86", "vriscv"])
    def test_correct_narrowing_validates_on_both_targets(self, target):
        outcome = self._validate(
            self.I96, IselOptions(narrow_loads=True), target
        )
        assert outcome.ok
