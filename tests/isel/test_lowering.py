"""Tests for instruction selection: lowering shapes, hints, optimizations,
and the two reintroduced bugs."""

import pytest

from repro.isel import BugMode, IselError, IselOptions, select_function
from repro.isel.hints import vreg_key
from repro.llvm import parse_module
from repro.vx86.insns import Imm, MemRef, PReg, VReg


def lower(source, name=None, options=None):
    module = parse_module(source)
    function = (
        module.function(name) if name else next(iter(module.functions.values()))
    )
    return module, *select_function(module, function, options)


def opcodes(machine, block):
    return [instruction.opcode for instruction in machine.block(block).instructions]


class TestBasicLowering:
    def test_arguments_copied_from_sysv_registers(self):
        _, machine, hints = lower(
            "define i32 @f(i32 %a, i32 %b, i32 %c) {\nentry:\n  ret i32 %a\n}"
        )
        prologue = machine.block(".LBB0").instructions[:3]
        sources = [instruction.operands[0] for instruction in prologue]
        assert [s.name for s in sources] == ["rdi", "rsi", "rdx"]
        assert all(s.width == 32 for s in sources)

    def test_return_through_eax(self):
        _, machine, _ = lower("define i32 @f(i32 %a) {\nentry:\n  ret i32 %a\n}")
        tail = machine.block(".LBB0").instructions[-2:]
        assert tail[0].opcode == "COPY"
        assert tail[0].result == PReg("rax", 32)
        assert tail[1].opcode == "ret"

    def test_block_map_hint(self):
        _, machine, hints = lower(
            "define i32 @f(i32 %a) {\nentry:\n  br label %next\n"
            "next:\n  ret i32 %a\n}"
        )
        assert hints.block_map == {"entry": ".LBB0", "next": ".LBB1"}

    def test_register_map_hint_covers_all_values(self):
        _, machine, hints = lower(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n"
            "  %y = mul i32 %x, %x\n  ret i32 %y\n}"
        )
        assert {"a", "x", "y"} <= set(hints.reg_map)

    def test_fused_compare_branch(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %a) {\nentry:\n"
            "  %c = icmp ult i32 %a, 10\n"
            "  br i1 %c, label %x, label %y\n"
            "x:\n  ret i32 1\ny:\n  ret i32 2\n}"
        )
        ops = opcodes(machine, ".LBB0")
        assert "cmp" in ops and "jb" in ops
        assert "setb" not in ops  # fused: no materialized boolean

    def test_unfused_icmp_materializes_setcc(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %a) {\nentry:\n"
            "  %c = icmp slt i32 %a, 10\n"
            "  %w = zext i1 %c to i32\n"
            "  ret i32 %w\n}"
        )
        ops = opcodes(machine, ".LBB0")
        assert "setl" in ops and "movzx" in ops

    def test_phi_constants_materialized_in_predecessors(self):
        _, machine, hints = lower(
            """
define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 1, %entry ], [ %inc, %head ]
  %inc = add i32 %i, 1
  %c = icmp ult i32 %inc, %n
  br i1 %c, label %head, label %out
out:
  ret i32 %i
}
"""
        )
        # The constant 1 must be materialized with mov in .LBB0.
        entry_ops = opcodes(machine, ".LBB0")
        assert "mov" in entry_ops
        assert hints.const_regs  # recorded for the VC generator

    def test_alloca_becomes_frame_object(self):
        _, machine, hints = lower(
            "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32\n"
            "  store i32 %x, i32* %p\n  %v = load i32, i32* %p\n  ret i32 %v\n}"
        )
        assert machine.frame_objects == {"stack.f.p": 4}
        assert hints.frame_objects == {"p": "stack.f.p"}
        assert hints.pointer_objects["p"] == "stack.f.p"

    def test_gep_constant_folds_to_lea(self):
        _, machine, _ = lower(
            "@arr = external global [4 x i32]\n"
            "define i32 @f() {\nentry:\n"
            "  %p = getelementptr inbounds [4 x i32], [4 x i32]* @arr, i64 0, i64 2\n"
            "  %v = load i32, i32* %p\n  ret i32 %v\n}"
        )
        lea = next(
            i for i in machine.block(".LBB0").instructions if i.opcode == "lea"
        )
        assert lea.operands[0].object == "arr"
        assert lea.operands[0].disp == 8

    def test_gep_dynamic_index_scales(self):
        _, machine, _ = lower(
            "@arr = external global [4 x i32]\n"
            "define i32 @f(i64 %i) {\nentry:\n"
            "  %p = getelementptr inbounds [4 x i32], [4 x i32]* @arr, i64 0, i64 %i\n"
            "  %v = load i32, i32* %p\n  ret i32 %v\n}"
        )
        ops = opcodes(machine, ".LBB0")
        assert "imul" in ops and "add" in ops

    def test_call_marshals_arguments(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %r = call i32 @g(i32 %x, i32 7)\n  ret i32 %r\n}"
        )
        call = next(
            i for i in machine.block(".LBB0").instructions if i.opcode == "call"
        )
        assert call.operands[0].name == "g"
        assert [p.name for p in call.operands[1:]] == ["rdi", "rsi"]

    def test_division_forces_register_operand(self):
        _, machine, _ = lower(
            "define i32 @f(i32 %x) {\nentry:\n  %q = sdiv i32 %x, 3\n  ret i32 %q\n}"
        )
        div = next(
            i for i in machine.block(".LBB0").instructions if i.opcode == "idiv"
        )
        assert isinstance(div.operands[1], VReg)


class TestUnsupported:
    def test_too_many_arguments(self):
        with pytest.raises(IselError):
            lower(
                "define i32 @f(i32 %a, i32 %b, i32 %c, i32 %d, i32 %e,"
                " i32 %g, i32 %h) {\nentry:\n  ret i32 %a\n}"
            )

    def test_i96_arithmetic(self):
        with pytest.raises(IselError):
            lower(
                "define i32 @f() {\nentry:\n  %x = add i96 1, 2\n  ret i32 0\n}"
            )


class TestStoreMerging:
    WAW = """
@b = external global [8 x i8]
define void @foo() {
entry:
  store i16 0, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 2) to i16*)
  store i16 2, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 3) to i16*)
  store i16 1, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 0) to i16*)
  ret void
}
"""

    def test_correct_merge_produces_dword_store_first(self):
        _, machine, _ = lower(self.WAW, options=IselOptions(merge_stores=True))
        stores = [
            i for i in machine.block(".LBB0").instructions if i.opcode == "store"
        ]
        assert len(stores) == 2
        first_mem = stores[0].operands[0]
        assert first_mem.width_bytes == 4 and first_mem.disp == 0
        # The overlapping 2-byte store stays second: order preserved.
        assert stores[1].operands[0].disp == 3

    def test_buggy_merge_reorders(self):
        _, machine, _ = lower(
            self.WAW, options=IselOptions(bug=BugMode.WAW_STORE_MERGE)
        )
        stores = [
            i for i in machine.block(".LBB0").instructions if i.opcode == "store"
        ]
        assert len(stores) == 2
        # Buggy: the wide merged store lands after the @3 store.
        assert stores[0].operands[0].disp == 3
        assert stores[1].operands[0].width_bytes == 4

    def test_merged_value_little_endian_composition(self):
        _, machine, _ = lower(self.WAW, options=IselOptions(merge_stores=True))
        wide = next(
            i
            for i in machine.block(".LBB0").instructions
            if i.opcode == "store" and i.operands[0].width_bytes == 4
        )
        # bytes 0..3 = [01, 00, 00, 00] -> 0x00000001.
        assert wide.operands[1] == Imm(1, 32)

    def test_no_merge_without_option(self):
        _, machine, _ = lower(self.WAW)
        stores = [
            i for i in machine.block(".LBB0").instructions if i.opcode == "store"
        ]
        assert len(stores) == 3


class TestLoadNarrowing:
    I96 = """
@a = external global i96, align 4
@b = external global i64, align 8
define void @foo() {
entry:
  %srcval = load i96, i96* @a, align 4
  %tmp96 = lshr i96 %srcval, 64
  %tmp64 = trunc i96 %tmp96 to i64
  store i64 %tmp64, i64* @b, align 8
  ret void
}
"""

    def test_correct_narrowing_uses_4_byte_load(self):
        _, machine, _ = lower(self.I96, options=IselOptions(narrow_loads=True))
        load = next(
            i for i in machine.block(".LBB0").instructions if i.opcode == "load"
        )
        assert load.operands[0].width_bytes == 4
        assert load.operands[0].disp == 8

    def test_buggy_narrowing_uses_8_byte_load(self):
        _, machine, _ = lower(
            self.I96, options=IselOptions(bug=BugMode.LOAD_NARROWING)
        )
        load = next(
            i for i in machine.block(".LBB0").instructions if i.opcode == "load"
        )
        assert load.operands[0].width_bytes == 8
        assert load.operands[0].disp == 8

    def test_i96_without_narrowing_is_unsupported(self):
        with pytest.raises(IselError):
            lower(self.I96)
