"""Unit tests for the store-merging and load-narrowing combines."""

import pytest

from repro.isel.bugs import BugMode
from repro.isel.optimize import (
    match_narrowable_load,
    merge_constant_stores,
    narrow_load_bytes,
)
from repro.llvm import parse_module
from repro.vx86.insns import Imm, MachineBlock, MemRef, MInstr


def store16(obj, disp, value):
    return MInstr("store", (MemRef(2, object=obj, disp=disp), Imm(value, 16)))


def block_of(*instructions):
    block = MachineBlock(".LBB0")
    block.instructions.extend(instructions)
    return block


class TestStoreMerging:
    def test_adjacent_stores_merge(self):
        block = block_of(store16("b", 0, 0x1111), store16("b", 2, 0x2222))
        assert merge_constant_stores(block, bug=None)
        (merged,) = block.instructions
        assert merged.operands[0].width_bytes == 4
        assert merged.operands[0].disp == 0
        # little-endian composition: bytes 11 11 22 22.
        assert merged.operands[1].value == 0x22221111

    def test_reversed_program_order_composes_identically(self):
        block = block_of(store16("b", 2, 0x2222), store16("b", 0, 0x1111))
        assert merge_constant_stores(block, bug=None)
        (merged,) = block.instructions
        assert merged.operands[1].value == 0x22221111

    def test_overlapping_pair_not_merged(self):
        block = block_of(store16("b", 0, 1), store16("b", 1, 2))
        assert not merge_constant_stores(block, bug=None)

    def test_gap_pair_not_merged(self):
        # union spans 6 bytes — not a dword.
        block = block_of(store16("b", 0, 1), store16("b", 4, 2))
        assert not merge_constant_stores(block, bug=None)

    def test_different_objects_not_merged(self):
        block = block_of(store16("a", 0, 1), store16("b", 2, 2))
        assert not merge_constant_stores(block, bug=None)

    def test_intervening_overlap_of_later_store_blocks_merge(self):
        """Moving the later store's bytes backwards past a store that
        overlaps them would reorder writes — the correct pass refuses."""
        block = block_of(
            store16("b", 0, 1),
            store16("b", 1, 9),  # overlaps BOTH candidates: no pair with it
            store16("b", 2, 2),
        )
        # The only disjoint dword pair is (bytes 0-2, bytes 2-4), but the
        # intervening store writes byte 2 — moving the later store's bytes
        # backwards past it would reorder writes.
        assert not merge_constant_stores(block, bug=None)

    def test_buggy_mode_ignores_intervening_overlap(self):
        """The paper's PR25154 shape: earlier store moved forward past an
        overlapping store."""
        block = block_of(
            store16("b", 2, 0),  # S1
            store16("b", 3, 2),  # S2 overlaps S1 at byte 3
            store16("b", 0, 1),  # S3
        )
        assert merge_constant_stores(block, bug=BugMode.WAW_STORE_MERGE)
        stores = block.instructions
        # Buggy placement: the merged dword (S1+S3) lands at S3's position,
        # AFTER S2 — the write-after-write reversal.
        assert stores[0].operands[0].disp == 3
        assert stores[1].operands[0].width_bytes == 4

    def test_correct_mode_on_paper_shape(self):
        block = block_of(
            store16("b", 2, 0),
            store16("b", 3, 2),
            store16("b", 0, 1),
        )
        assert merge_constant_stores(block, bug=None)
        stores = block.instructions
        # Correct placement: the merged dword first, overlap-preserving.
        assert stores[0].operands[0].width_bytes == 4
        assert stores[0].operands[0].disp == 0
        assert stores[1].operands[0].disp == 3

    def test_dynamic_store_blocks_merge(self):
        from repro.vx86.insns import VReg

        dynamic = MInstr(
            "store", (MemRef(2, base=VReg(0, 64)), Imm(5, 16))
        )
        block = block_of(store16("b", 2, 0), dynamic, store16("b", 0, 1))
        assert not merge_constant_stores(block, bug=None)


class TestLoadNarrowing:
    def parse_pattern(self, source):
        module = parse_module(source)
        function = next(iter(module.functions.values()))
        block = function.entry_block
        load = block.instructions[0]
        from repro.llvm.verify import _used_locals

        counts = {}
        for _, _, instruction in function.instructions():
            for name in _used_locals(instruction):
                counts[name] = counts.get(name, 0) + 1
        return match_narrowable_load(block, load, counts)

    I96 = """
@a = external global i96
@b = external global i64
define void @foo() {
entry:
  %v = load i96, i96* @a
  %s = lshr i96 %v, 64
  %t = trunc i96 %s to i64
  store i64 %t, i64* @b
  ret void
}
"""

    def test_paper_pattern_matches(self):
        pattern = self.parse_pattern(self.I96)
        assert pattern is not None
        assert pattern.byte_offset == 8
        assert pattern.remaining_bits == 32
        assert pattern.target_width == 64

    def test_correct_width_is_remaining_bits(self):
        pattern = self.parse_pattern(self.I96)
        assert narrow_load_bytes(pattern, bug=None) == 4

    def test_buggy_width_is_target_width(self):
        pattern = self.parse_pattern(self.I96)
        assert narrow_load_bytes(pattern, bug=BugMode.LOAD_NARROWING) == 8

    def test_non_byte_shift_does_not_match(self):
        pattern = self.parse_pattern(
            """
@a = external global i96
define void @foo() {
entry:
  %v = load i96, i96* @a
  %s = lshr i96 %v, 63
  %t = trunc i96 %s to i64
  ret void
}
"""
        )
        assert pattern is None

    def test_multi_use_load_does_not_match(self):
        pattern = self.parse_pattern(
            """
@a = external global i96
define void @foo() {
entry:
  %v = load i96, i96* @a
  %s = lshr i96 %v, 64
  %s2 = lshr i96 %v, 32
  %t = trunc i96 %s to i64
  ret void
}
"""
        )
        assert pattern is None
