"""Tests for the peephole copy-propagation pass and its black-box
validation — the second client of the x86~x86 TV pipeline."""

import pytest

from repro.isel import select_function
from repro.keq import Keq, KeqOptions, Verdict, default_acceptability
from repro.llvm import parse_module
from repro.memory import Memory
from repro.regalloc import eliminate_phis, generate_regalloc_sync_points
from repro.regalloc.peephole import copy_propagate
from repro.regalloc.vcgen import RegAllocVcError
from repro.semantics.run import run_concrete
from repro.smt import t
from repro.vx86 import parse_machine_function
from repro.vx86.semantics import Vx86Semantics, machine_entry_state

LOOP = """
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %acc2 = add i32 %acc, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %acc
}
"""

#: A COPY whose source is redefined before the destination's use: the
#: sloppy variant propagates the stale source.
REDEFINITION = """
f:
.LBB0:
  %vr0_32 = COPY edi
  %vr1_32 = COPY %vr0_32
  %vr0_32 = add %vr0_32, 1
  eax = COPY %vr1_32
  ret
"""


def validate_pair(input_function, output_function) -> Verdict:
    try:
        points = generate_regalloc_sync_points(input_function, output_function)
    except RegAllocVcError:
        return Verdict.NOT_VALIDATED
    keq = Keq(
        Vx86Semantics({input_function.name: input_function}),
        Vx86Semantics({output_function.name: output_function}),
        default_acceptability(),
        KeqOptions(max_steps=20000, max_pair_checks=10000),
    )
    return keq.check_equivalence(points).verdict


def loop_input():
    module = parse_module(LOOP)
    machine, _ = select_function(module, module.function("sum"))
    return eliminate_phis(machine)


class TestPass:
    def test_propagates_copies(self):
        function = loop_input()
        optimized = copy_propagate(function)
        header = optimized.block(".LBB1")
        cmp = next(i for i in header.instructions if i.opcode == "cmp")
        # cmp's operand was %vr1 (a copy of %vr8); it now reads %vr8.
        assert str(cmp.operands[0]) == "%vr8_32"

    def test_behaviour_preserved_concretely(self):
        function = loop_input()
        optimized = copy_propagate(function)
        for n in (0, 3, 9):
            registers = {"rdi": t.bv_const(n, 64)}
            before = run_concrete(
                Vx86Semantics({function.name: function}),
                machine_entry_state(function, Memory.create([]), registers),
            )
            after = run_concrete(
                Vx86Semantics({optimized.name: optimized}),
                machine_entry_state(optimized, Memory.create([]), registers),
            )
            assert before.returned.value == after.returned.value

    def test_sloppy_variant_miscompiles_redefinition(self):
        function = parse_machine_function(REDEFINITION)
        correct = copy_propagate(function)
        sloppy = copy_propagate(function, sloppy=True)
        registers = {"rdi": t.bv_const(10, 64)}

        def run(machine):
            return run_concrete(
                Vx86Semantics({machine.name: machine}),
                machine_entry_state(machine, Memory.create([]), registers),
            ).returned.value

        assert run(function) == 10
        assert run(correct) == 10
        assert run(sloppy) == 11  # the stale propagated source


class TestBlackBoxValidation:
    def test_correct_pass_validates(self):
        function = loop_input()
        assert validate_pair(function, copy_propagate(function)) is Verdict.VALIDATED

    def test_sloppy_pass_refused_on_trigger(self):
        function = parse_machine_function(REDEFINITION)
        sloppy = copy_propagate(function, sloppy=True)
        assert validate_pair(function, sloppy) is Verdict.NOT_VALIDATED

    def test_correct_pass_on_trigger_validates(self):
        function = parse_machine_function(REDEFINITION)
        assert validate_pair(function, copy_propagate(function)) is Verdict.VALIDATED

    def test_same_vcgen_used_for_both_clients(self):
        """The allocation VC generator is transformation-agnostic: it never
        saw the peephole pass and still validates it (the black-box
        property the paper claims for its register-allocation work)."""
        import repro.regalloc.vcgen as vcgen_module
        import repro.regalloc.peephole as peephole_module

        source = open(vcgen_module.__file__).read()
        assert "peephole" not in source
        assert "copy_propagate" not in source
        del peephole_module
