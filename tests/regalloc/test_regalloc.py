"""Tests for the register-allocation extension: SSA elimination, linear
scan, black-box VC generation, and KEQ validating the whole pass."""

import pytest

from repro.isel import select_function
from repro.keq import Keq, KeqOptions, Verdict, default_acceptability
from repro.llvm import parse_module
from repro.llvm.semantics import module_memory
from repro.llvm.types import sizeof
from repro.memory import Memory, MemoryObject
from repro.regalloc import (
    AllocatorBug,
    allocate_registers,
    eliminate_phis,
    generate_regalloc_sync_points,
)
from repro.regalloc.allocator import ALLOCATABLE, RegAllocError
from repro.semantics.state import StatusKind
from repro.smt import t
from repro.vx86.insns import PReg, VReg
from repro.vx86.semantics import Vx86Semantics, machine_entry_state

LOOP = """
define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %acc2 = add i32 %acc, %i
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %acc
}
"""

# Eleven simultaneously-live values force spilling with a 7-register pool.
MANY_LIVE = """
define i32 @wide(i32 %a, i32 %b) {
entry:
  %v0 = add i32 %a, %b
  %v1 = add i32 %a, 1
  %v2 = add i32 %a, 2
  %v3 = add i32 %a, 3
  %v4 = add i32 %a, 4
  %v5 = add i32 %a, 5
  %v6 = add i32 %a, 6
  %v7 = add i32 %a, 7
  %v8 = add i32 %a, 8
  %v9 = add i32 %a, 9
  %v10 = add i32 %a, 10
  br label %next
next:
  %s0 = add i32 %v0, %v1
  %s1 = add i32 %s0, %v2
  %s2 = add i32 %s1, %v3
  %s3 = add i32 %s2, %v4
  %s4 = add i32 %s3, %v5
  %s5 = add i32 %s4, %v6
  %s6 = add i32 %s5, %v7
  %s7 = add i32 %s6, %v8
  %s8 = add i32 %s7, %v9
  %s9 = add i32 %s8, %v10
  ret i32 %s9
}
"""


def machine_for(source):
    module = parse_module(source)
    function = next(iter(module.functions.values()))
    machine, _ = select_function(module, function)
    return module, machine


def run_concrete(function, registers, limit=50000):
    semantics = Vx86Semantics({function.name: function})
    state = machine_entry_state(function, Memory.create([]), registers)
    frontier = [state]
    for _ in range(limit):
        advanced = []
        for current in frontier:
            successors = [
                s for s in semantics.step(current) if s.path_condition is t.TRUE
            ]
            if successors:
                advanced.extend(successors)
            else:
                return current
        frontier = advanced
    raise AssertionError("did not halt")


class TestSsaElimination:
    def test_phis_removed(self):
        _, machine = machine_for(LOOP)
        eliminated = eliminate_phis(machine)
        assert all(
            instruction.opcode != "PHI"
            for _, _, instruction in eliminated.instructions()
        )

    def test_behaviour_preserved(self):
        _, machine = machine_for(LOOP)
        before = run_concrete(machine, {"rdi": t.bv_const(6, 64)})
        _, machine2 = machine_for(LOOP)
        eliminated = eliminate_phis(machine2)
        after = run_concrete(eliminated, {"rdi": t.bv_const(6, 64)})
        assert before.returned.value == after.returned.value == 15

    def test_swap_problem_handled(self):
        """Two phis exchanging values each iteration: naive in-place copies
        would lose one; the temporary scheme must not."""
        module = parse_module(
            """
define i32 @swap(i32 %n) {
entry:
  br label %head
head:
  %x = phi i32 [ 1, %entry ], [ %y, %body ]
  %y = phi i32 [ 2, %entry ], [ %x, %body ]
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %inc = add i32 %i, 1
  br label %head
done:
  ret i32 %x
}
"""
        )
        machine, _ = select_function(module, module.function("swap"))
        eliminated = eliminate_phis(machine)
        # After an odd number of swaps x holds 2, after even it holds 1.
        for n, expected in ((0, 1), (1, 2), (2, 1), (5, 2)):
            final = run_concrete(eliminated, {"rdi": t.bv_const(n, 64)})
            assert final.returned.value == expected, n


class TestAllocator:
    def test_no_vregs_remain(self):
        _, machine = machine_for(LOOP)
        result = allocate_registers(eliminate_phis(machine))
        for _, _, instruction in result.function.instructions():
            operands = list(instruction.operands)
            if instruction.result is not None:
                operands.append(instruction.result)
            for operand in operands:
                assert not isinstance(operand, VReg), instruction

    def test_behaviour_preserved_simple(self):
        _, machine = machine_for(LOOP)
        result = allocate_registers(eliminate_phis(machine))
        final = run_concrete(result.function, {"rdi": t.bv_const(7, 64)})
        assert final.returned.value == 21

    def test_spilling_occurs_under_pressure(self):
        _, machine = machine_for(MANY_LIVE)
        result = allocate_registers(eliminate_phis(machine))
        assert result.spills, "expected register pressure to force spills"
        assert result.spill_object in result.function.frame_objects

    def test_behaviour_preserved_with_spills(self):
        _, machine = machine_for(MANY_LIVE)
        result = allocate_registers(eliminate_phis(machine))
        final = run_concrete(
            result.function,
            {"rdi": t.bv_const(100, 64), "rsi": t.bv_const(5, 64)},
        )
        # Python reference of the same computation.
        a, b = 100, 5
        v = [a + b] + [a + k for k in range(1, 11)]
        s = v[0]
        for k in range(1, 11):
            s += v[k]
        assert final.returned.value == s & 0xFFFFFFFF

    def test_wrong_slot_bug_changes_behaviour(self):
        _, machine = machine_for(MANY_LIVE)
        good = allocate_registers(eliminate_phis(machine))
        _, machine2 = machine_for(MANY_LIVE)
        bad = allocate_registers(
            eliminate_phis(machine2), bug=AllocatorBug.WRONG_SPILL_SLOT
        )
        registers = {"rdi": t.bv_const(100, 64), "rsi": t.bv_const(5, 64)}
        good_final = run_concrete(good.function, registers)
        bad_final = run_concrete(bad.function, registers)
        assert good_final.returned.value != bad_final.returned.value

    def test_calls_rejected(self):
        module = parse_module(
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %r = call i32 @g(i32 %x)\n  ret i32 %r\n}"
        )
        machine, _ = select_function(module, module.function("f"))
        with pytest.raises(RegAllocError):
            allocate_registers(eliminate_phis(machine))


class TestBlackBoxValidation:
    def validate(self, source, bug=None):
        from repro.keq.report import KeqReport
        from repro.regalloc.vcgen import RegAllocVcError

        module, machine = machine_for(source)
        input_function = eliminate_phis(machine)
        result = allocate_registers(input_function, bug=bug)
        try:
            points = generate_regalloc_sync_points(
                input_function, result.function
            )
        except RegAllocVcError:
            # Inference found no consistent correspondence — the
            # translation is not validated (a clobbered value has no home).
            return KeqReport(Verdict.NOT_VALIDATED)
        keq = Keq(
            Vx86Semantics({input_function.name: input_function}),
            Vx86Semantics({result.function.name: result.function}),
            default_acceptability(),
            KeqOptions(max_steps=20000, max_pair_checks=10000),
        )
        return keq.check_equivalence(points)

    def test_correct_allocation_validates(self):
        report = self.validate(LOOP)
        assert report.verdict is Verdict.VALIDATED, report.summary()

    def test_spilling_allocation_validates(self):
        report = self.validate(MANY_LIVE)
        assert report.verdict is Verdict.VALIDATED, report.summary()

    def test_wrong_slot_bug_caught(self):
        report = self.validate(MANY_LIVE, bug=AllocatorBug.WRONG_SPILL_SLOT)
        assert report.verdict is Verdict.NOT_VALIDATED

    def test_overlapping_assignment_caught(self):
        report = self.validate(LOOP, bug=AllocatorBug.OVERLAPPING_ASSIGNMENT)
        assert report.verdict is Verdict.NOT_VALIDATED

    def test_inferred_constraints_reference_homes(self):
        module, machine = machine_for(LOOP)
        input_function = eliminate_phis(machine)
        result = allocate_registers(input_function)
        points = generate_regalloc_sync_points(input_function, result.function)
        loop_points = [p for p in points if p.kind == "loop"]
        assert loop_points
        for point in loop_points:
            for constraint in point.constraints:
                assert constraint.right.kind in ("env", "mem")
