"""Tests for the common memory model (the paper's common.k analogue)."""

import pytest

from repro.memory import (
    AccessError,
    Memory,
    MemoryObject,
    PointerValue,
    interpret_pointer,
    object_base_var,
)
from repro.smt import Solver, simplify, t


def fresh_memory(**sizes: int) -> Memory:
    return Memory.create([MemoryObject(name, size) for name, size in sizes.items()])


def ptr(obj: str, off: int = 0) -> PointerValue:
    return PointerValue(obj, t.bv_const(off, 64))


class TestStoreLoadRoundtrip:
    def test_byte_roundtrip(self):
        memory = fresh_memory(g=8)
        value = t.bv_const(0xAB, 8)
        memory = memory.store(ptr("g", 3), value, 1)
        assert memory.load(ptr("g", 3), 1) is value

    def test_word_roundtrip(self):
        memory = fresh_memory(g=8)
        value = t.bv_var("v", 32)
        memory = memory.store(ptr("g", 0), value, 4)
        assert memory.load(ptr("g", 0), 4) is value

    def test_little_endian_layout(self):
        memory = fresh_memory(g=8)
        memory = memory.store(ptr("g", 0), t.bv_const(0x11223344, 32), 4)
        assert memory.load(ptr("g", 0), 1).value == 0x44
        assert memory.load(ptr("g", 3), 1).value == 0x11

    def test_overlapping_store_shadows(self):
        memory = fresh_memory(g=8)
        memory = memory.store(ptr("g", 0), t.bv_const(0x1111, 16), 2)
        memory = memory.store(ptr("g", 1), t.bv_const(0x2222, 16), 2)
        # Byte 0 from the first store, bytes 1-2 from the second.
        assert memory.load(ptr("g", 0), 1).value == 0x11
        assert memory.load(ptr("g", 1), 1).value == 0x22
        assert memory.load(ptr("g", 2), 1).value == 0x22

    def test_write_after_write_order_is_observable(self):
        """The paper's WAW bug (Fig. 8/9) depends on exactly this."""
        memory = fresh_memory(b=8)
        memory = memory.store(ptr("b", 2), t.bv_const(0, 16), 2)
        memory = memory.store(ptr("b", 3), t.bv_const(2, 16), 2)
        reordered = fresh_memory(b=8)
        reordered = reordered.store(ptr("b", 3), t.bv_const(2, 16), 2)
        reordered = reordered.store(ptr("b", 2), t.bv_const(0, 16), 2)
        # Byte 3 differs: 0x02 vs 0x00.
        assert memory.load(ptr("b", 3), 1).value == 0x02
        assert reordered.load(ptr("b", 3), 1).value == 0x00

    def test_initial_bytes_are_deterministic_symbols(self):
        memory_a = fresh_memory(g=4)
        memory_b = fresh_memory(g=4)
        assert memory_a.load(ptr("g", 0), 1) is memory_b.load(ptr("g", 0), 1)

    def test_store_width_mismatch_raises(self):
        memory = fresh_memory(g=8)
        with pytest.raises(AccessError):
            memory.store(ptr("g", 0), t.bv_const(1, 32), 2)

    def test_unknown_object_raises(self):
        memory = fresh_memory(g=8)
        with pytest.raises(AccessError):
            memory.load(ptr("nope", 0), 1)


class TestSymbolicOffsets:
    def test_symbolic_store_then_matching_load(self):
        index = t.bv_var("i", 64)
        memory = fresh_memory(g=16)
        value = t.bv_var("v", 8)
        memory = memory.store(PointerValue("g", index), value, 1)
        loaded = memory.load(PointerValue("g", index), 1)
        assert simplify(loaded) is value

    def test_symbolic_load_over_concrete_store_builds_ite(self):
        memory = fresh_memory(g=4)
        memory = memory.store(ptr("g", 1), t.bv_const(7, 8), 1)
        index = t.bv_var("i", 64)
        loaded = memory.load(PointerValue("g", index), 1)
        solver = Solver()
        pinned = t.implies(
            t.eq(index, t.bv_const(1, 64)), t.eq(loaded, t.bv_const(7, 8))
        )
        assert solver.prove(pinned)

    def test_symbolic_load_unwritten_is_select(self):
        memory = fresh_memory(g=4)
        index = t.bv_var("i", 64)
        loaded = memory.load(PointerValue("g", index), 1)
        assert loaded.op == "select"

    def test_concrete_load_after_symbolic_store_is_conditional(self):
        index = t.bv_var("i", 64)
        memory = fresh_memory(g=16)
        memory = memory.store(PointerValue("g", index), t.bv_const(9, 8), 1)
        loaded = memory.load(ptr("g", 2), 1)
        solver = Solver()
        assert solver.prove(
            t.implies(t.eq(index, t.bv_const(2, 64)), t.eq(loaded, t.bv_const(9, 8)))
        )


class TestBounds:
    def test_concrete_in_bounds(self):
        memory = fresh_memory(g=8)
        assert memory.in_bounds_condition(ptr("g", 0), 8) is t.TRUE
        assert memory.in_bounds_condition(ptr("g", 4), 4) is t.TRUE

    def test_concrete_out_of_bounds(self):
        memory = fresh_memory(g=8)
        assert memory.in_bounds_condition(ptr("g", 5), 4) is t.FALSE
        assert memory.in_bounds_condition(ptr("g", 8), 1) is t.FALSE

    def test_access_wider_than_object(self):
        memory = fresh_memory(g=2)
        assert memory.in_bounds_condition(ptr("g", 0), 4) is t.FALSE

    def test_paper_load_narrowing_shape(self):
        """An 8-byte load at offset 8 of a 12-byte object is OOB — the
        observable of the paper's second reintroduced bug (Fig. 10/11)."""
        memory = fresh_memory(a=12)
        assert memory.in_bounds_condition(ptr("a", 8), 4) is t.TRUE
        assert memory.in_bounds_condition(ptr("a", 8), 8) is t.FALSE

    def test_symbolic_offset_condition(self):
        memory = fresh_memory(g=8)
        index = t.bv_var("i", 64)
        condition = memory.in_bounds_condition(PointerValue("g", index), 4)
        solver = Solver()
        assert solver.prove(
            t.implies(t.eq(index, t.bv_const(4, 64)), condition)
        )
        assert solver.prove(
            t.implies(t.eq(index, t.bv_const(5, 64)), t.not_(condition))
        )


class TestPointerMaterialization:
    def test_roundtrip_through_term(self):
        pointer = ptr("g", 4)
        recovered = interpret_pointer(pointer.materialize())
        assert recovered is not None
        assert recovered.object == "g"
        assert simplify(recovered.offset).value == 4

    def test_base_only_pointer(self):
        recovered = interpret_pointer(object_base_var("g"))
        assert recovered == PointerValue("g", t.zero(64))

    def test_non_pointer_term_is_none(self):
        assert interpret_pointer(t.bv_var("x", 64)) is None

    def test_roundtrip_through_memory(self):
        """Store a pointer into memory, load it back, recover the object."""
        memory = fresh_memory(g=8, slot=8)
        pointer_term = ptr("g", 4).materialize()
        memory = memory.store(ptr("slot", 0), pointer_term, 8)
        loaded = memory.load(ptr("slot", 0), 8)
        recovered = interpret_pointer(simplify(loaded))
        assert recovered is not None and recovered.object == "g"

    def test_moved_pointer(self):
        moved = ptr("g", 4).moved(t.bv_const(2, 64))
        assert moved.offset.value == 6


class TestMemoryEquality:
    def test_identical_memories_equal(self):
        memory = fresh_memory(g=4)
        assert simplify(memory.equal_term(memory)) is t.TRUE

    def test_same_stores_equal(self):
        first = fresh_memory(g=4).store(ptr("g", 0), t.bv_const(5, 8), 1)
        second = fresh_memory(g=4).store(ptr("g", 0), t.bv_const(5, 8), 1)
        assert simplify(first.equal_term(second)) is t.TRUE

    def test_different_contents_not_equal(self):
        first = fresh_memory(g=4).store(ptr("g", 0), t.bv_const(5, 8), 1)
        second = fresh_memory(g=4).store(ptr("g", 0), t.bv_const(6, 8), 1)
        assert simplify(first.equal_term(second)) is t.FALSE

    def test_symbolic_but_identical_stores_equal(self):
        value = t.bv_var("v", 8)
        first = fresh_memory(g=4).store(ptr("g", 1), value, 1)
        second = fresh_memory(g=4).store(ptr("g", 1), value, 1)
        assert simplify(first.equal_term(second)) is t.TRUE

    def test_missing_object_is_inequality(self):
        first = fresh_memory(g=4)
        second = fresh_memory(g=4, extra=2)
        assert first.equal_term(second) is t.FALSE

    def test_object_subset_selection(self):
        first = fresh_memory(g=4, h=4).store(ptr("h", 0), t.bv_const(1, 8), 1)
        second = fresh_memory(g=4, h=4).store(ptr("h", 0), t.bv_const(2, 8), 1)
        assert simplify(first.equal_term(second, objects=["g"])) is t.TRUE
        assert simplify(first.equal_term(second, objects=["h"])) is t.FALSE


class TestCompaction:
    def test_long_concrete_chains_compact(self):
        memory = fresh_memory(g=64)
        for i in range(40):
            memory = memory.store(ptr("g", i % 64), t.bv_const(i, 8), 1)
        contents = memory.object("g")
        assert len(contents.writes) <= 33
        assert memory.load(ptr("g", 39), 1).value == 39

    def test_alloca_object_added_dynamically(self):
        memory = fresh_memory(g=4)
        memory = memory.add_object(MemoryObject("stack0", 4, kind="stack"))
        memory = memory.store(ptr("stack0", 0), t.bv_const(1, 32), 4)
        assert memory.load(ptr("stack0", 0), 4).value == 1

    def test_duplicate_object_rejected(self):
        memory = fresh_memory(g=4)
        with pytest.raises(AccessError):
            memory.add_object(MemoryObject("g", 4))
