"""Property-based tests of the common memory model (store/load axioms)."""

from hypothesis import assume, given, settings, strategies as st

from repro.memory import Memory, MemoryObject, PointerValue
from repro.smt import Solver, simplify, t
from repro.smt.eval import evaluate

SIZE = 16

offsets = st.integers(0, SIZE - 1)
widths = st.sampled_from([1, 2, 4, 8])
values = st.integers(0, 2**64 - 1)


def fresh() -> Memory:
    return Memory.create([MemoryObject("obj", SIZE)])


def ptr(offset: int) -> PointerValue:
    return PointerValue("obj", t.bv_const(offset, 64))


@st.composite
def store_sequences(draw):
    count = draw(st.integers(0, 6))
    sequence = []
    for _ in range(count):
        width = draw(widths)
        offset = draw(st.integers(0, SIZE - width))
        value = draw(values)
        sequence.append((offset, width, value))
    return sequence


def python_model(sequence):
    """Reference byte array semantics."""
    memory = [None] * SIZE
    for offset, width, value in sequence:
        for i in range(width):
            memory[offset + i] = (value >> (8 * i)) & 0xFF
    return memory


class TestStoreLoadAxioms:
    @given(sequence=store_sequences())
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_reference_bytes(self, sequence):
        memory = fresh()
        for offset, width, value in sequence:
            memory = memory.store(
                ptr(offset), t.bv_const(value, width * 8), width
            )
        reference = python_model(sequence)
        for index, expected in enumerate(reference):
            loaded = memory.load(ptr(index), 1)
            if expected is None:
                assert not loaded.is_const()  # still the initial symbol
            else:
                assert loaded.is_const() and loaded.value == expected

    @given(sequence=store_sequences(), offset=offsets, width=widths)
    @settings(max_examples=150, deadline=None)
    def test_wide_load_composes_bytes(self, sequence, offset, width):
        assume(offset + width <= SIZE)
        memory = fresh()
        for off, w, value in sequence:
            memory = memory.store(ptr(off), t.bv_const(value, w * 8), w)
        reference = python_model(sequence)
        loaded = memory.load(ptr(offset), width)
        if all(reference[offset + i] is not None for i in range(width)):
            expected = int.from_bytes(
                bytes(reference[offset + i] for i in range(width)), "little"
            )
            assert loaded.is_const() and loaded.value == expected

    @given(offset=st.integers(0, SIZE - 4), value=values)
    @settings(max_examples=100, deadline=None)
    def test_store_then_load_identity(self, offset, value):
        memory = fresh().store(ptr(offset), t.bv_const(value, 32), 4)
        assert memory.load(ptr(offset), 4).value == value & 0xFFFFFFFF

    @given(
        offset_a=st.integers(0, SIZE - 4),
        offset_b=st.integers(0, SIZE - 4),
        value=values,
    )
    @settings(max_examples=100, deadline=None)
    def test_disjoint_store_preserves(self, offset_a, offset_b, value):
        assume(abs(offset_a - offset_b) >= 4)
        first = t.bv_var("v0", 32)
        memory = fresh().store(ptr(offset_a), first, 4)
        memory = memory.store(ptr(offset_b), t.bv_const(value, 32), 4)
        assert memory.load(ptr(offset_a), 4) is first


class TestSymbolicOffsetSoundness:
    @given(
        store_offset=st.integers(0, SIZE - 1),
        read_offset=st.integers(0, SIZE - 1),
        value=st.integers(0, 255),
    )
    @settings(max_examples=40, deadline=None)
    def test_symbolic_read_matches_concrete(self, store_offset, read_offset, value):
        """A load at a symbolic offset, pinned by the solver to a concrete
        offset, must equal the direct concrete load."""
        memory = fresh().store(
            ptr(store_offset), t.bv_const(value, 8), 1
        )
        index = t.bv_var("idx", 64)
        symbolic = memory.load(PointerValue("obj", index), 1)
        concrete = memory.load(ptr(read_offset), 1)
        solver = Solver()
        pinned = t.implies(
            t.eq(index, t.bv_const(read_offset, 64)),
            t.eq(symbolic, concrete),
        )
        assert solver.prove(pinned)
